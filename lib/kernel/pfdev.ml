module Packet = Pf_pkt.Packet
module Engine = Pf_sim.Engine
module Cpu = Pf_sim.Cpu
module Smp = Pf_sim.Smp
module San = Pf_sim.San
module Costs = Pf_sim.Costs
module Stats = Pf_sim.Stats
module Process = Pf_sim.Process
module Condition = Pf_sim.Condition
module Frame = Pf_net.Frame
module Addr = Pf_net.Addr

type capture = {
  packet : Packet.t;
  timestamp : Pf_sim.Time.t option;
  dropped_before : int;
}

type port = {
  dev : t;
  id : int;
  mutable filter : Pf_filter.Fast.t option;
  mutable regvm : Pf_filter.Regvm.t option;
      (* When set, the sequential walk runs this instead of [filter]; the
         stack compilation is kept alongside for the decision-tree path. *)
  mutable engine_kind : [ `Stack | `Raised | `Regvm | `Regvm_super ];
  mutable engine_applications : int;
  mutable engine_insns : int;
  mutable insns_source : int;
  mutable insns_compiled : int;
  mutable validated : Pf_filter.Validate.t option;
  mutable analysis : Pf_filter.Analysis.t option;
  mutable certification : Pf_filter.Equiv.certification option;
      (* translation-validation outcome of the install-time compilation;
         None when the device was not certifying at install time *)
  mutable priority : int;
  mutable timeout : Pf_sim.Time.t option;
  mutable queue_limit : int;
  queue : capture Queue.t;
  cond : unit Condition.t;
  mutable watchers : (unit -> bool) list; (* pending selects *)
  mutable copy_all : bool;
  mutable tap : bool;
  mutable timestamps : bool;
  mutable signal : (unit -> unit) option;
  mutable is_open : bool;
  mutable dropped : int;
  mutable accepted : int;
}

and t = {
  engine : Engine.t;
  smp : Smp.t; (* CPU 0 is the boot CPU; demux runs on the steered CPU *)
  costs : Costs.t;
  stats : Stats.t;
  variant : Frame.variant;
  address : Addr.t;
  send : Packet.t -> unit;
  mutable ports : port list; (* sorted: priority desc, then id asc *)
  mutable next_id : int;
  mutable demuxed_since_reorder : int;
  mutable strategy : [ `Sequential | `Decision_tree | `Dispatch ];
  mutable compile_strategy : [ `Off | `Raise_only | `Regvm | `Regvm_super ];
  mutable certify : bool; (* translation-validate install-time compilation *)
  mutable tree : port Pf_filter.Decision.t option; (* cache; None = dirty *)
  dispatch : dispatch_state array; (* one private automaton per CPU *)
  mutable dispatch_rebuilds : int;
  mutable dispatch_classifies : int;
  mutable dispatch_exact_accepts : int;
  mutable dispatch_candidates : int;
  mutable dispatch_residual_runs : int;
  superopt_memo : Pf_filter.Equiv.Memo.t;
      (* device-wide equivalence-verdict memo: [`Regvm_super] installs of
         recurring programs (and recurring search candidates) prove once *)
  mutable cost_limit : int option; (* admission bound on a filter's cost_bound *)
  mutable cache_enabled : bool;
  mutable cache_capacity : int;
  mutable key_state : key_state; (* shared: derived from the filter set *)
  caches : flow_cache array; (* one private, contention-free cache per CPU *)
  delivery_lock : Smp.lock; (* shared port queues; only taken when ncpus > 1 *)
  smp_packets : int array; (* demuxed packets per CPU *)
  smp_lock_waits : int array; (* contended delivery-lock acquisitions per CPU *)
  smp_lock_wait_us : int array; (* spin time per CPU *)
  mutable san : san_handles option; (* concurrency sanitizer, when attached *)
}

(* The sanitizer's view of this device: every shared object registered with
   its locking discipline. Absent (the default), instrumentation is dead
   code with zero cost — which is what keeps every legacy counter and the
   1-CPU parity gate byte-identical. *)
and san_handles = {
  checker : San.t;
  res_queue : San.resource; (* shared port queues, guarded by delivery_lock *)
  res_table : San.resource; (* the port/filter table, published by IPI *)
  res_cache : San.resource array; (* per-CPU private flow caches *)
  res_dispatch : San.resource array; (* per-CPU private dispatch automata *)
  res_statword : San.resource array; (* per-CPU demux counters *)
}

(* The cross-filter dispatch automaton ({!Pf_filter.Dispatch}), rebuilt
   lazily on first use after any acceptor-changing mutation — exactly the
   flow cache's invalidation set, so [invalidate_cache] marks it dirty.
   Each CPU owns its own instance: rebuilds are private, classification
   touches no cross-CPU state. *)
and dispatch_state =
  | Dispatch_dirty
  | Dispatch_built of port Pf_filter.Dispatch.t

(* The demultiplexing flow cache: a bounded table from the packet bytes at
   the installed filters' union read set to the list of accepting ports.
   Soundness rests on {!Pf_filter.Analysis.t.read_set}: two packets that
   agree on every read-set word (including which of those words exist) get
   the same verdict from every installed filter, so the cached acceptor
   list is exactly what the ordered walk (or the decision tree) would have
   produced — as long as the filter set, priorities, and walk order have
   not changed since the entry was stored, which is what the invalidation
   paths guarantee. On an SMP device there is one cache per CPU — receive
   steering sends every packet of a flow to the same CPU, so the caches
   shard the flow space with no cross-CPU traffic — and every invalidation
   flushes all of them (costed as an IPI broadcast). *)
and flow_cache = {
  table : (string, port list) Hashtbl.t;
  fifo : string Queue.t; (* insertion order, for capacity eviction *)
  mutable generation : int; (* bumped by every invalidation *)
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

and key_state =
  | Dirty (* filter set changed: recompute before the next lookup *)
  | Unusable (* some installed filter's read set is unbounded *)
  | Offsets of int array (* sorted union read set of the installed filters *)

let fresh_cache () =
  {
    table = Hashtbl.create 64;
    fifo = Queue.create ();
    generation = 0;
    hits = 0;
    misses = 0;
    bypasses = 0;
    invalidations = 0;
    evictions = 0;
  }

let create_smp engine smp costs stats ~variant ~address ~send =
  let n = Smp.ncpus smp in
  {
    engine;
    smp;
    costs;
    stats;
    variant;
    address;
    send;
    ports = [];
    next_id = 0;
    demuxed_since_reorder = 0;
    strategy = `Sequential;
    compile_strategy = `Off;
    certify = false;
    tree = None;
    dispatch = Array.make n Dispatch_dirty;
    dispatch_rebuilds = 0;
    dispatch_classifies = 0;
    dispatch_exact_accepts = 0;
    dispatch_candidates = 0;
    dispatch_residual_runs = 0;
    superopt_memo = Pf_filter.Equiv.Memo.create ();
    cost_limit = None;
    cache_enabled = true;
    cache_capacity = 256;
    key_state = Dirty;
    caches = Array.init n (fun _ -> fresh_cache ());
    delivery_lock = Smp.Lock.create ~name:"delivery_lock" smp;
    smp_packets = Array.make n 0;
    smp_lock_waits = Array.make n 0;
    smp_lock_wait_us = Array.make n 0;
    san = None;
  }

let create engine cpu costs stats ~variant ~address ~send =
  create_smp engine (Smp.of_cpus engine costs [| cpu |]) costs stats ~variant ~address ~send

let ncpus t = Smp.ncpus t.smp
let smp t = t.smp

module For_testing = struct
  (* When set, [install]/[set_filter] leave the flow cache alone — the
     "forgot to invalidate" kernel bug. The differential suite flips this to
     prove the cold/warm/disabled demux oracle catches stale entries; never
     set it outside tests. *)
  let skip_install_invalidation = ref false

  (* When set, invalidations flush only the mutating CPU's flow cache and
     skip the IPI broadcast — the SMP variant of the same bug: a kernel
     that forgot the other CPUs exist. Remote caches keep answering from
     entries stored under the old filter set. The differential suite flips
     this to prove the oracle catches stale remote decisions. *)
  let skip_remote_invalidation = ref false

  (* When set, the demux delivery path inserts into the shared port queues
     without taking the delivery lock — the skip-lock-around-queue-insert
     bug. The lock is pure cost accounting to the differential oracle
     (verdicts never change), so only the concurrency sanitizer can catch
     this one: the delivery queue's candidate lockset goes empty as soon as
     two CPUs both deliver. *)
  let skip_delivery_lock = ref false
end

let san t = Option.map (fun h -> h.checker) t.san

(* Declare the device's shared objects, their disciplines, and every access
   site to a sanitizer, and start instrumenting. The declarations double as
   the static lint's input: `pftool sanlint` checks them against each
   other and the lock-order DAG without running any traffic. *)
let attach_san t san =
  if San.ncpus san <> Smp.ncpus t.smp then
    invalid_arg "Pfdev.attach_san: sanitizer and device disagree on ncpus";
  Smp.set_san t.smp san;
  let n = Smp.ncpus t.smp in
  San.declare_lock san (Smp.Lock.name t.delivery_lock);
  let res_queue =
    San.register san ~name:"pfdev.delivery_queue"
      ~discipline:(San.Guarded_by (Smp.Lock.name t.delivery_lock))
  in
  let res_table =
    San.register san ~name:"pfdev.port_table" ~discipline:San.Ipi_published
  in
  let res_cache =
    Array.init n (fun k ->
        San.register san
          ~name:(Printf.sprintf "pfdev.flow_cache.cpu%d" k)
          ~discipline:(San.Cpu_private k))
  in
  let res_dispatch =
    Array.init n (fun k ->
        San.register san
          ~name:(Printf.sprintf "pfdev.dispatch.cpu%d" k)
          ~discipline:(San.Cpu_private k))
  in
  let res_statword =
    Array.init n (fun k ->
        San.register san
          ~name:(Printf.sprintf "pfdev.smp_stats.cpu%d" k)
          ~discipline:(San.Cpu_private k))
  in
  let lock = Smp.Lock.name t.delivery_lock in
  San.declare_site san ~site:"Pfdev.demux:deliver" ~ctx:San.Any_cpu
    ~locks:[ lock ] ~rw:`Write res_queue;
  San.declare_site san ~site:"Pfdev.locked_dequeue" ~ctx:San.Boot
    ~locks:[ lock ] ~rw:`Write res_queue;
  San.declare_site san ~site:"Pfdev.demux:classify" ~ctx:San.Any_cpu ~locks:[]
    ~rw:`Read res_table;
  San.declare_site san ~site:"Pfdev.install" ~ctx:San.Boot ~locks:[]
    ~rw:`Write res_table;
  San.declare_site san ~site:"Pfdev.maybe_reorder" ~ctx:San.Any_cpu ~locks:[]
    ~rw:`Write res_table;
  Array.iteri
    (fun k r ->
      San.declare_site san ~site:"Pfdev.demux:cache" ~ctx:(San.On_cpu k)
        ~locks:[] ~rw:`Write r)
    res_cache;
  Array.iteri
    (fun k r ->
      San.declare_site san ~site:"Pfdev.invalidate_cache:flush"
        ~ctx:(San.On_cpu k) ~locks:[] ~rw:`Write r)
    res_cache;
  Array.iteri
    (fun k r ->
      San.declare_site san ~site:"Pfdev.demux:dispatch" ~ctx:(San.On_cpu k)
        ~locks:[] ~rw:`Write r)
    res_dispatch;
  Array.iteri
    (fun k r ->
      San.declare_site san ~site:"Pfdev.demux:counters" ~ctx:(San.On_cpu k)
        ~locks:[] ~rw:`Write r)
    res_statword;
  t.san <-
    Some { checker = san; res_queue; res_table; res_cache; res_dispatch; res_statword }

(* A real mutation of the port table, for the sanitizer's happens-before
   tracking. (Distinct from [invalidate_cache], which also covers
   mutations of cache {e policy} that touch no table state.) *)
let san_table_write ?(cpu = 0) t =
  match t.san with
  | Some h -> San.write h.checker ~cpu h.res_table
  | None -> ()

let invalidate_cache ?(cpu = 0) t =
  (* An acceptor-changing mutation: tell the protocol checker a new
     configuration epoch begins now, before any CPU syncs to it. *)
  (match t.san with Some h -> San.publish h.checker ~cpu h.res_table | None -> ());
  (* The dispatch automaton is sound under exactly the invariants the flow
     cache is, so the two share one invalidation set. *)
  let flush_one k =
    t.dispatch.(k) <- Dispatch_dirty;
    let c = t.caches.(k) in
    c.generation <- c.generation + 1;
    if Hashtbl.length c.table > 0 then begin
      Hashtbl.reset c.table;
      Queue.clear c.fifo
    end;
    c.invalidations <- c.invalidations + 1;
    match t.san with
    | Some h ->
      (* The flush runs in CPU [k]'s logical context (its shootdown
         handler); observing it is what syncs [k] to the new epoch. *)
      San.write h.checker ~cpu:k h.res_cache.(k);
      San.write h.checker ~cpu:k h.res_dispatch.(k);
      San.sync h.checker ~cpu:k h.res_table
    | None -> ()
  in
  if !For_testing.skip_remote_invalidation then flush_one cpu
  else begin
    t.key_state <- Dirty;
    for k = 0 to Smp.ncpus t.smp - 1 do
      flush_one k
    done;
    (* Remote caches are flushed by a costed interprocessor broadcast: the
       mutating CPU pays one ipi_send per peer, each peer one ipi_receive.
       (The flush itself is done synchronously above — the simulation's
       demux events are already serialized by the engine, so no packet can
       race the shootdown; only the cost is modeled.) *)
    if Smp.ncpus t.smp > 1 then begin
      Stats.incr ~by:(Smp.ncpus t.smp - 1) t.stats "pf.smp.ipi";
      Smp.ipi_broadcast t.smp ~src:cpu (fun _ -> ())
    end
  end;
  Stats.incr t.stats "pf.cache.invalidation"

(* Stable order: decreasing priority, then open order — maintained at
   mutation time ([insert_port]/[reprioritize]), not by re-sorting on the
   demux path. The occasional busier-first reordering of equal-priority
   filters (section 3.2) happens in [maybe_reorder]. *)
let insert_port t port =
  t.tree <- None;
  let rec ins = function
    | [] -> [ port ]
    | p :: _ as l when p.priority < port.priority || (p.priority = port.priority && p.id > port.id)
      -> port :: l
    | p :: rest -> p :: ins rest
  in
  t.ports <- ins t.ports

let reprioritize t port priority =
  t.ports <- List.filter (fun p -> p.id <> port.id) t.ports;
  port.priority <- priority;
  insert_port t port

let maybe_reorder ?cpu t =
  t.demuxed_since_reorder <- t.demuxed_since_reorder + 1;
  if t.demuxed_since_reorder >= 256 then begin
    t.demuxed_since_reorder <- 0;
    let before = List.map (fun p -> p.id) t.ports in
    t.ports <-
      List.stable_sort
        (fun a b ->
          match compare b.priority a.priority with
          | 0 -> compare b.accepted a.accepted (* busier first *)
          | c -> c)
        t.ports;
    (* Reordering equal-priority overlapping filters can change which port
       wins a packet, so any cached decision taken under the old order is
       stale. *)
    if List.map (fun p -> p.id) t.ports <> before then begin
      san_table_write ?cpu t;
      invalidate_cache ?cpu t
    end
  end

(* Charge CPU when called from process context; plain setup code (before the
   simulation starts) runs free. *)
let charge cost = if Process.running () && cost > 0 then Process.use_cpu cost

let open_port t =
  t.next_id <- t.next_id + 1;
  let port =
    {
      dev = t;
      id = t.next_id;
      filter = None;
      regvm = None;
      engine_kind = `Stack;
      engine_applications = 0;
      engine_insns = 0;
      insns_source = 0;
      insns_compiled = 0;
      validated = None;
      analysis = None;
      certification = None;
      priority = 0;
      timeout = None;
      queue_limit = 32;
      queue = Queue.create ();
      cond = Condition.create ();
      watchers = [];
      copy_all = false;
      tap = false;
      timestamps = false;
      signal = None;
      is_open = true;
      dropped = 0;
      accepted = 0;
    }
  in
  insert_port t port;
  san_table_write t;
  invalidate_cache t;
  port

let close_port port =
  port.is_open <- false;
  port.dev.ports <- List.filter (fun p -> p.id <> port.id) port.dev.ports;
  port.dev.tree <- None;
  san_table_write port.dev;
  invalidate_cache port.dev;
  (* Wake any blocked readers; they will notice the port is closed. *)
  ignore (Condition.broadcast port.cond () : int)

type install_error =
  | Invalid of Pf_filter.Validate.error
  | Cost_limit_exceeded of { bound : int; limit : int }

let pp_install_error ppf = function
  | Invalid e -> Pf_filter.Validate.pp_error ppf e
  | Cost_limit_exceeded { bound; limit } ->
    Format.fprintf ppf
      "filter cost bound %d exceeds the device admission limit %d" bound limit

let set_cost_limit t limit =
  t.cost_limit <- limit;
  invalidate_cache t

(* Installation = validation + abstract interpretation. The analysis result
   is recorded on the port: its cost bound gates admission (a filter the
   device provably cannot afford per packet is refused up front, not
   throttled later), and its verdict/relations feed the status surface. *)
let install port program =
  match Pf_filter.Validate.check program with
  | Error e -> Error (Invalid e)
  | Ok validated -> (
    let t = port.dev in
    (* Compile according to the device strategy. [`Raise_only] replaces the
       stack program with its lower→optimize→raise round trip (never worse:
       Regopt falls back to the original otherwise), so every downstream
       engine — including the decision tree — runs the optimized code.
       [`Regvm] additionally compiles the optimized IR for direct register
       execution on the sequential walk; the stack compilation is kept for
       the decision-tree path and the status surface. *)
    let fast, regvm, kind, compiled_insns, certification =
      match t.compile_strategy with
      | `Off ->
        ( Pf_filter.Fast.compile validated,
          None,
          `Stack,
          Pf_filter.Program.insn_count program,
          (* identity compilation: trivially meaning-preserving *)
          if t.certify then Some Pf_filter.Equiv.Certified else None )
      | `Raise_only -> (
        let raised, certification =
          if t.certify then
            let (raised, _report), cert =
              Pf_filter.Regopt.raise_program_certified validated
            in
            (raised, Some cert)
          else (fst (Pf_filter.Regopt.raise_program validated), None)
        in
        match Pf_filter.Validate.check raised with
        | Ok vr ->
          ( Pf_filter.Fast.compile vr,
            None,
            `Raised,
            Pf_filter.Program.insn_count raised,
            certification )
        | Error _ ->
          (* Regopt guarantees the raised program validates; defensively
             keep the original if that invariant ever breaks. *)
          ( Pf_filter.Fast.compile validated,
            None,
            `Stack,
            Pf_filter.Program.insn_count program,
            certification ))
      | `Regvm -> (
        let rvm = Pf_filter.Regvm.compile validated in
        let certification =
          if t.certify then
            Some
              (Pf_filter.Equiv.certification_of_report
                 (Pf_filter.Equiv.check_ir validated (Pf_filter.Regvm.ir rvm)))
          else None
        in
        match certification with
        | Some (Pf_filter.Equiv.Refuted _) ->
          (* A refuted IR compilation never runs: keep the checked stack
             engine for this port and surface the witness. *)
          ( Pf_filter.Fast.compile validated,
            None,
            `Stack,
            Pf_filter.Program.insn_count program,
            certification )
        | _ ->
          ( Pf_filter.Fast.compile validated,
            Some rvm,
            `Regvm,
            Pf_filter.Ir.instr_count (Pf_filter.Regvm.ir rvm),
            certification ))
      | `Regvm_super ->
        (* The stochastic search needs a verified incumbent, so this
           strategy always runs the certified pipeline (a refuted pipeline
           falls back to the plain lowering inside
           [Regopt.optimize_superopt] before the search starts — the VM
           below is safe to run either way). The device-wide memo shares
           proof work across installs of recurring programs. *)
        let rvm, certification, outcome =
          Pf_filter.Regvm.compile_super ~memo:t.superopt_memo validated
        in
        let st = outcome.Pf_filter.Superopt.stats in
        Stats.incr ~by:st.Pf_filter.Superopt.accepted t.stats "pf.superopt.accepted";
        Stats.incr ~by:st.Pf_filter.Superopt.rejected t.stats "pf.superopt.rejected";
        Stats.incr ~by:st.Pf_filter.Superopt.refuted t.stats "pf.superopt.refuted";
        Stats.incr ~by:st.Pf_filter.Superopt.proved t.stats "pf.superopt.proved";
        ( Pf_filter.Fast.compile validated,
          Some rvm,
          `Regvm_super,
          Pf_filter.Ir.instr_count (Pf_filter.Regvm.ir rvm),
          (* The search cannot run without certifying its incumbent, so the
             certification is always in hand — record it whether or not the
             device opted into [set_certify]. *)
          Some certification )
    in
    (match certification with
    | None -> ()
    | Some Pf_filter.Equiv.Certified -> Stats.incr t.stats "pf.certify.proved"
    | Some (Pf_filter.Equiv.Refuted _) ->
      Stats.incr t.stats "pf.certify.refuted"
    | Some (Pf_filter.Equiv.Uncertified _) ->
      Stats.incr t.stats "pf.certify.unknown");
    (* Admission and the status surface use the analysis of the program the
       sequential walk actually interprets (for [`Raise_only] the raised
       one — its cost bound is never larger, and its read set is sound for
       the flow cache because the verdict is preserved on every packet). *)
    let analysis = Pf_filter.Fast.analysis fast in
    match t.cost_limit with
    | Some limit when analysis.Pf_filter.Analysis.cost_bound > limit ->
      Error
        (Cost_limit_exceeded
           { bound = analysis.Pf_filter.Analysis.cost_bound; limit })
    | _ ->
      (* "at a cost comparable to that of receiving a packet" (§3.1) *)
      charge (t.costs.Costs.syscall + Costs.copy_cost t.costs ~bytes:(2 * Pf_filter.Program.code_words program) + t.costs.Costs.recv_interrupt);
      port.filter <- Some fast;
      port.regvm <- regvm;
      port.engine_kind <- kind;
      port.engine_applications <- 0;
      port.engine_insns <- 0;
      port.insns_source <- Pf_filter.Program.insn_count program;
      port.insns_compiled <- compiled_insns;
      port.validated <- Some (Pf_filter.Fast.validated fast);
      port.analysis <- Some analysis;
      port.certification <- certification;
      reprioritize t port (Pf_filter.Program.priority program);
      san_table_write t;
      if not !For_testing.skip_install_invalidation then invalidate_cache t
      else begin
        (* The buggy kernel still mutated the acceptor set — the protocol
           checker must learn the epoch advanced even though no CPU will
           ever sync to it. That is precisely what lets Pfsan flag this
           mutant from the trace alone. *)
        match t.san with
        | Some h -> San.publish h.checker ~cpu:0 h.res_table
        | None -> ()
      end;
      Ok analysis)

let set_filter port program =
  match install port program with Ok _ -> Ok () | Error _ as e -> e

let port_analysis port = port.analysis
let port_certification port = port.certification
let port_id port = port.id
let port_accepted port = port.accepted
let port_dropped port = port.dropped

let set_priority port priority =
  reprioritize port.dev port priority;
  san_table_write port.dev;
  invalidate_cache port.dev

let set_strategy t strategy =
  t.strategy <- strategy;
  t.tree <- None;
  invalidate_cache t

(* The compile strategy applies to future installs only: already-installed
   filters keep the engine they were compiled with (like a real driver,
   where recompiling under the caller's feet would need locking). Verdicts
   are engine-independent, so cached decisions stay sound; we still flush
   defensively since per-port cost accounting changes. *)
let set_compile_strategy t strategy =
  if t.compile_strategy <> strategy then begin
    t.compile_strategy <- strategy;
    invalidate_cache t
  end

let compile_strategy t = t.compile_strategy

let set_certify t certify = t.certify <- certify
let certify t = t.certify

type engine_stats = {
  engine : [ `Stack | `Raised | `Regvm | `Regvm_super ];
  applications : int;
  insns_executed : int;
  insns_source : int;
  insns_compiled : int;
}

let port_engine_stats port =
  match port.filter with
  | None -> None
  | Some _ ->
    Some
      {
        engine = port.engine_kind;
        applications = port.engine_applications;
        insns_executed = port.engine_insns;
        insns_source = port.insns_source;
        insns_compiled = port.insns_compiled;
      }

let set_timeout port timeout = port.timeout <- timeout
let set_queue_limit port n = port.queue_limit <- max 1 n
let set_copy_all port flag =
  port.copy_all <- flag;
  port.dev.tree <- None;
  invalidate_cache port.dev
let set_tap port flag =
  port.tap <- flag;
  port.dev.tree <- None;
  invalidate_cache port.dev
let set_timestamps port flag = port.timestamps <- flag
let set_signal port cb = port.signal <- cb

(* {1 Flow-cache control and observability} *)

let set_cache_enabled t flag =
  if t.cache_enabled <> flag then begin
    t.cache_enabled <- flag;
    invalidate_cache t
  end

let set_cache_capacity t n =
  t.cache_capacity <- max 1 n;
  invalidate_cache t

type cache_stats = {
  enabled : bool;
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  bypasses : int;
  invalidations : int;
  evictions : int;
}

(* Aggregated over every CPU's private cache. [capacity] is per CPU;
   [invalidations] counts flush events per cache, so at N CPUs each
   device-level invalidation contributes N (and at one CPU this is exactly
   the legacy count). *)
let cache_stats t =
  let entries = ref 0
  and hits = ref 0
  and misses = ref 0
  and bypasses = ref 0
  and invalidations = ref 0
  and evictions = ref 0 in
  Array.iter
    (fun c ->
      entries := !entries + Hashtbl.length c.table;
      hits := !hits + c.hits;
      misses := !misses + c.misses;
      bypasses := !bypasses + c.bypasses;
      invalidations := !invalidations + c.invalidations;
      evictions := !evictions + c.evictions)
    t.caches;
  {
    enabled = t.cache_enabled;
    entries = !entries;
    capacity = t.cache_capacity;
    hits = !hits;
    misses = !misses;
    bypasses = !bypasses;
    invalidations = !invalidations;
    evictions = !evictions;
  }

type dispatch_stats = {
  rebuilds : int;
  classifies : int;
  exact_accepts : int;
  candidates_run : int;
  residual_runs : int;
}

let dispatch_stats t =
  {
    rebuilds = t.dispatch_rebuilds;
    classifies = t.dispatch_classifies;
    exact_accepts = t.dispatch_exact_accepts;
    candidates_run = t.dispatch_candidates;
    residual_runs = t.dispatch_residual_runs;
  }

let pp_dispatch_stats ppf s =
  Format.fprintf ppf
    "dispatch: %d rebuilds, %d classifies, %d exact accepts, %d candidates run, %d residual runs"
    s.rebuilds s.classifies s.exact_accepts s.candidates_run s.residual_runs

let pp_cache_stats ppf s =
  Format.fprintf ppf
    "flow cache: %s, %d/%d entries, %d hits / %d misses / %d bypasses, %d invalidations, %d evictions"
    (if s.enabled then "enabled" else "disabled")
    s.entries s.capacity s.hits s.misses s.bypasses s.invalidations s.evictions

(* {1 Kernel side} *)

let enqueue port capture =
  if Queue.length port.queue >= port.queue_limit then begin
    port.dropped <- port.dropped + 1;
    Stats.incr port.dev.stats "pf.drop.overflow"
  end
  else begin
    Queue.push capture port.queue;
    ignore (Condition.signal port.cond () : bool);
    (match port.signal with Some f -> f () | None -> ());
    match port.watchers with
    | [] -> ()
    | watchers ->
      port.watchers <- [];
      List.iter (fun deliver -> ignore (deliver () : bool)) watchers
  end

(* The merged-dispatch mode (section 7's "decision table") only preserves
   sequential semantics when every packet goes to at most one port, so any
   copy-all or tap port disables it. *)
let tree_usable t = List.for_all (fun p -> (not p.copy_all) && not p.tap) t.ports

let tree_of t =
  match t.tree with
  | Some tree -> tree
  | None ->
    let entries =
      List.filter_map
        (fun p ->
          match p.validated with Some v when p.is_open -> Some (v, p) | Some _ | None -> None)
        t.ports
    in
    let tree = Pf_filter.Decision.build entries in
    t.tree <- Some tree;
    tree

(* The whole-port-set dispatch automaton. Copy-all and tap ports are
   excluded from indexing (their multi-delivery cannot be expressed by a
   first-match winner) and fall to the rank-ordered residual walk, which
   [demux] merges with the automaton winner by rank. *)
let dispatch_of t cpu =
  match t.dispatch.(cpu) with
  | Dispatch_built d -> d
  | Dispatch_dirty ->
    let entries =
      List.filter_map
        (fun p ->
          match p.validated with
          | Some v when p.is_open -> Some (v, p)
          | Some _ | None -> None)
        t.ports
    in
    let d =
      Pf_filter.Dispatch.build
        ~indexable:(fun p -> (not p.copy_all) && not p.tap)
        entries
    in
    t.dispatch.(cpu) <- Dispatch_built d;
    t.dispatch_rebuilds <- t.dispatch_rebuilds + 1;
    Stats.incr t.stats "pf.dispatch.rebuild";
    d

(* Recompute the union read set of every installed filter. A port with no
   filter accepts nothing and reads nothing, so it does not constrain the
   key; any filter with an unbounded read set makes the cache unusable
   until the next invalidation changes the filter set. *)
let refresh_key_state t =
  let rec union acc = function
    | [] -> t.key_state <- Offsets (Array.of_list (List.sort_uniq compare acc))
    | p :: rest -> (
      match p.analysis with
      | None -> union acc rest
      | Some a -> (
        match a.Pf_filter.Analysis.read_set with
        | Pf_filter.Analysis.Unbounded -> t.key_state <- Unusable
        | Pf_filter.Analysis.Exact idxs -> union (idxs @ acc) rest))
  in
  union [] t.ports

(* The cache key: for each union-read-set offset, a presence marker plus the
   big-endian word bytes — absence is part of the key because a too-short
   packet faults (rejecting) where a longer one reads a value. *)
let cache_key offsets frame =
  let buf = Buffer.create (3 * Array.length offsets) in
  Array.iter
    (fun i ->
      match Packet.word_opt frame i with
      | Some w ->
        Buffer.add_char buf '\001';
        Buffer.add_char buf (Char.chr (w lsr 8));
        Buffer.add_char buf (Char.chr (w land 0xff))
      | None -> Buffer.add_char buf '\000')
    offsets;
  Buffer.contents buf

(* Receive-side steering: hash the packet bytes at the union read set — the
   same bytes the flow cache keys on — to pick the receive CPU. Two packets
   of one flow agree on every read-set word, so they always steer to the
   same CPU, and each CPU's flow cache and dispatch automaton stay private
   to its shard of the flow space. When the key is unusable (some installed
   filter's read set is unbounded) or empty, everything lands on CPU 0.
   Steering charges no CPU time: it models the NIC's receive hashing
   hardware, not kernel work. *)
let steer t frame =
  let n = Smp.ncpus t.smp in
  if n = 1 then 0
  else begin
    if t.key_state = Dirty then refresh_key_state t;
    match t.key_state with
    | Dirty -> assert false
    | Unusable -> 0
    | Offsets [||] -> 0
    | Offsets offsets -> Hashtbl.hash (cache_key offsets frame) mod n
  end

type smp_cpu_stats = {
  cpu : int;
  packets : int;
  cache_hits : int;
  cache_misses : int;
  lock_waits : int;
  lock_wait_us : int;
  ipis_sent : int;
  ipis_received : int;
  busy_us : int;
  idle_us : int;
}

type smp_stats = {
  ncpus : int;
  per_cpu : smp_cpu_stats list;
  lock_acquisitions : int;
  lock_contended : int;
  lock_wait_total_us : int;
  ipis : int;
}

let smp_stats (t : t) =
  let now = Engine.now t.engine in
  let per_cpu =
    List.init (Smp.ncpus t.smp) (fun k ->
        let c = t.caches.(k) in
        let cpu_k = Smp.cpu t.smp k in
        {
          cpu = k;
          packets = t.smp_packets.(k);
          cache_hits = c.hits;
          cache_misses = c.misses;
          lock_waits = t.smp_lock_waits.(k);
          lock_wait_us = t.smp_lock_wait_us.(k);
          ipis_sent = Smp.ipis_sent t.smp k;
          ipis_received = Smp.ipis_received t.smp k;
          busy_us = Cpu.busy_time cpu_k;
          idle_us = Cpu.idle_since cpu_k ~start:0 ~now;
        })
  in
  {
    ncpus = Smp.ncpus t.smp;
    per_cpu;
    lock_acquisitions = Smp.Lock.acquisitions t.delivery_lock;
    lock_contended = Smp.Lock.contended t.delivery_lock;
    lock_wait_total_us = Smp.Lock.wait_time t.delivery_lock;
    ipis = Smp.total_ipis t.smp;
  }

let pp_smp_cpu_stats ppf s =
  Format.fprintf ppf
    "cpu%d: %d packets, %d hits / %d misses, %d lock waits (%d us), %d/%d ipis sent/recv, %d us busy / %d us idle"
    s.cpu s.packets s.cache_hits s.cache_misses s.lock_waits s.lock_wait_us
    s.ipis_sent s.ipis_received s.busy_us s.idle_us

let pp_smp_stats ppf s =
  Format.fprintf ppf
    "smp: %d cpus, %d lock acquisitions (%d contended, %d us spinning), %d ipis"
    s.ncpus s.lock_acquisitions s.lock_contended s.lock_wait_total_us s.ipis;
  List.iter (fun c -> Format.fprintf ppf "@\n  %a" pp_smp_cpu_stats c) s.per_cpu

let demux t ?(cpu = 0) ?(kernel_claimed = false) frame =
  let costs = t.costs in
  let n = Smp.ncpus t.smp in
  if cpu < 0 || cpu >= n then invalid_arg "Pfdev.demux: no such CPU";
  Stats.incr t.stats "pf.packets";
  t.smp_packets.(cpu) <- t.smp_packets.(cpu) + 1;
  if n > 1 then Stats.incr t.stats (Printf.sprintf "pf.smp.cpu%d.packets" cpu);
  let arrival = Engine.now t.engine in
  let cpu_cost = ref 0 in
  let c = t.caches.(cpu) in
  (* Sanitizer instrumentation. Each instrumented access is a real shadow
     bookkeeping step on the demuxing CPU, charged at [san_access] — that
     charge is what `bench smp --san` measures as overhead. Without an
     attached sanitizer every branch below is dead and free. *)
  (match t.san with
  | Some h ->
    San.write h.checker ~cpu h.res_statword.(cpu);
    San.read h.checker ~cpu h.res_table;
    cpu_cost := !cpu_cost + (2 * costs.Costs.san_access)
  | None -> ());
  (* Probe this CPU's flow cache before any filter interpretation.
     Kernel-claimed packets bypass it: they see a different port subset
     (taps only), so caching their decisions under the same key would be
     unsound. *)
  let probe =
    if not t.cache_enabled then `Off
    else if kernel_claimed then begin
      c.bypasses <- c.bypasses + 1;
      Stats.incr t.stats "pf.cache.bypass";
      `Off
    end
    else begin
      if t.key_state = Dirty then refresh_key_state t;
      match t.key_state with
      | Dirty -> assert false
      | Unusable ->
        c.bypasses <- c.bypasses + 1;
        Stats.incr t.stats "pf.cache.bypass";
        `Off
      | Offsets offsets -> (
        let key = cache_key offsets frame in
        cpu_cost :=
          !cpu_cost + costs.Costs.cache_probe
          + (Array.length offsets * costs.Costs.cache_hash_word);
        (match t.san with
        | Some h ->
          San.read h.checker ~cpu h.res_cache.(cpu);
          cpu_cost := !cpu_cost + costs.Costs.san_access
        | None -> ());
        match Hashtbl.find_opt c.table key with
        | Some acceptors ->
          (match t.san with
          | Some h -> San.note_hit h.checker ~cpu h.res_cache.(cpu) ~key
          | None -> ());
          `Hit acceptors
        | None -> `Miss (key, c.generation))
    end
  in
  let acceptors =
    match probe with
    | `Hit acceptors ->
      c.hits <- c.hits + 1;
      Stats.incr t.stats "pf.cache.hit";
      List.iter
        (fun port ->
          port.accepted <- port.accepted + 1;
          if port.timestamps then cpu_cost := !cpu_cost + costs.Costs.timestamp)
        acceptors;
      acceptors
    | (`Miss _ | `Off) as probe ->
      (* Busier-first reordering only matters (and only makes sense) for the
         sequential strategy; the tree is keyed on guards, not position. *)
      if t.strategy = `Sequential then maybe_reorder ~cpu t;
      let acceptors = ref [] in
      let run_port_filter port =
        Stats.incr t.stats "pf.filters_tested";
        let ok, insns =
          match port.regvm with
          | Some rvm ->
            cpu_cost := !cpu_cost + costs.Costs.regvm_apply;
            let ok, insns = Pf_filter.Regvm.run_counted rvm frame in
            cpu_cost := !cpu_cost + (insns * costs.Costs.regvm_insn);
            Stats.incr ~by:insns t.stats "pf.regvm_insns";
            (ok, insns)
          | None ->
            let filter = Option.get port.filter in
            cpu_cost := !cpu_cost + costs.Costs.filter_apply;
            let ok, insns = Pf_filter.Fast.run_counted filter frame in
            cpu_cost := !cpu_cost + (insns * costs.Costs.filter_insn);
            (ok, insns)
        in
        Stats.incr ~by:insns t.stats "pf.filter_insns";
        port.engine_applications <- port.engine_applications + 1;
        port.engine_insns <- port.engine_insns + insns;
        ok
      in
      let accept port =
        port.accepted <- port.accepted + 1;
        if port.timestamps then cpu_cost := !cpu_cost + costs.Costs.timestamp;
        acceptors := port :: !acceptors
      in
      let rec apply = function
        | [] -> ()
        | port :: rest ->
          if (not port.is_open) || port.filter = None || (kernel_claimed && not port.tap)
          then apply rest
          else if run_port_filter port then begin
            accept port;
            (* Stop unless this filter asked for copies to lower priorities. *)
            if port.copy_all then apply rest
          end
          else apply rest
      in
      if t.strategy = `Decision_tree && (not kernel_claimed) && tree_usable t then begin
        (* One guard-trie walk instead of priority-ordered interpretation;
           verdicts are identical (property-tested in Decision). *)
        let result, stats = Pf_filter.Decision.classify_stats (tree_of t) frame in
        cpu_cost :=
          !cpu_cost
          + (stats.Pf_filter.Decision.filters_run * costs.Costs.filter_apply)
          + (stats.Pf_filter.Decision.insns * costs.Costs.filter_insn);
        Stats.incr ~by:stats.Pf_filter.Decision.filters_run t.stats "pf.filters_tested";
        Stats.incr ~by:stats.Pf_filter.Decision.insns t.stats "pf.filter_insns";
        match result with Some port -> accept port | None -> ()
      end
      else if t.strategy = `Dispatch && not kernel_claimed then begin
        (* Automaton classification, then the residual walk merged by rank:
           walk residual ports of lower rank than the automaton winner (a
           residual may outrank it, or be copy-all and accept additionally);
           once every remaining residual ranks past the winner, the winner —
           always non-copy-all — takes the packet and stops the walk, exactly
           where the sequential walk would have stopped. *)
        let d = dispatch_of t cpu in
        (match t.san with
        | Some h ->
          San.read h.checker ~cpu h.res_dispatch.(cpu);
          cpu_cost := !cpu_cost + costs.Costs.san_access
        | None -> ());
        t.dispatch_classifies <- t.dispatch_classifies + 1;
        Stats.incr t.stats "pf.dispatch.classify";
        let winner, dstats =
          Pf_filter.Dispatch.classify
            ~on_run:(fun port ~insns ->
              Stats.incr t.stats "pf.filters_tested";
              Stats.incr ~by:insns t.stats "pf.filter_insns";
              port.engine_applications <- port.engine_applications + 1;
              port.engine_insns <- port.engine_insns + insns)
            d frame
        in
        cpu_cost :=
          !cpu_cost
          + (dstats.Pf_filter.Dispatch.probes * costs.Costs.dispatch_probe)
          + (dstats.Pf_filter.Dispatch.hash_words * costs.Costs.dispatch_hash_word)
          + (dstats.Pf_filter.Dispatch.candidates_run * costs.Costs.filter_apply)
          + (dstats.Pf_filter.Dispatch.insns * costs.Costs.filter_insn);
        t.dispatch_exact_accepts <-
          t.dispatch_exact_accepts + dstats.Pf_filter.Dispatch.exact_accepts;
        t.dispatch_candidates <-
          t.dispatch_candidates + dstats.Pf_filter.Dispatch.candidates_run;
        if dstats.Pf_filter.Dispatch.exact_accepts > 0 then
          Stats.incr t.stats "pf.dispatch.exact_accept";
        let winner_rank = match winner with Some (r, _) -> r | None -> max_int in
        let deliver_winner () =
          match winner with Some (_, port) -> accept port | None -> ()
        in
        let rec walk = function
          | [] -> deliver_winner ()
          | (rank, port) :: rest ->
            if rank > winner_rank then deliver_winner ()
            else if (not port.is_open) || port.filter = None then walk rest
            else begin
              t.dispatch_residual_runs <- t.dispatch_residual_runs + 1;
              Stats.incr t.stats "pf.dispatch.residual_run";
              if run_port_filter port then begin
                accept port;
                if port.copy_all then walk rest
              end
              else walk rest
            end
        in
        walk (Pf_filter.Dispatch.residuals d)
      end
      else apply t.ports;
      let acceptors = List.rev !acceptors in
      (match probe with
      | `Miss (key, generation) when generation = c.generation ->
        (* Store the decision unless something (e.g. a busier-first reorder
           during this very walk) invalidated the cache after the key was
           computed under the old read set. *)
        c.misses <- c.misses + 1;
        Stats.incr t.stats "pf.cache.miss";
        cpu_cost := !cpu_cost + costs.Costs.cache_probe (* insert *);
        if Hashtbl.length c.table >= t.cache_capacity then (
          match Queue.take_opt c.fifo with
          | Some victim ->
            Hashtbl.remove c.table victim;
            c.evictions <- c.evictions + 1;
            Stats.incr t.stats "pf.cache.eviction"
          | None -> ());
        Hashtbl.replace c.table key acceptors;
        Queue.push key c.fifo;
        (match t.san with
        | Some h ->
          San.write h.checker ~cpu h.res_cache.(cpu);
          San.note_store h.checker ~cpu h.res_cache.(cpu) ~key;
          cpu_cost := !cpu_cost + costs.Costs.san_access
        | None -> ())
      | `Miss _ ->
        c.misses <- c.misses + 1;
        Stats.incr t.stats "pf.cache.miss"
      | `Off -> ());
      acceptors
  in
  let accepted = acceptors <> [] in
  if accepted then Stats.incr t.stats "pf.accepted"
  else if not kernel_claimed then Stats.incr t.stats "pf.drop.nomatch";
  (* The filter interpretation and bookkeeping happen at interrupt level;
     delivery (queueing + reader wakeup) completes when that CPU work
     retires. On an SMP device delivery mutates shared port queues, so it
     runs under the costed delivery spinlock; classification itself touches
     only this CPU's private cache and automaton and needs no lock. The
     split into two interrupt-owner runs is cost-neutral on one CPU (no
     context switch is ever charged between them), which is what keeps the
     single-CPU SMP path byte-identical to the legacy accounting. *)
  let wake = if accepted then costs.Costs.wakeup else 0 in
  let cpu_exec = Smp.cpu t.smp cpu in
  let classify_done =
    Cpu.run cpu_exec ~owner:`Interrupt ~start:arrival ~cost:!cpu_cost
  in
  let finish =
    if not accepted then classify_done
    else begin
      let deliver_cost = ref wake in
      let san_queue_write () =
        match t.san with
        | Some h ->
          San.write h.checker ~cpu h.res_queue;
          deliver_cost := !deliver_cost + costs.Costs.san_access
        | None -> ()
      in
      if n > 1 then
        if !For_testing.skip_delivery_lock then
          (* The seeded bug: the shared-queue insert runs bare. Verdicts
             and queue contents are identical (the engine serializes demux
             events), so only the sanitizer's lockset can see this. *)
          san_queue_write ()
        else begin
          (* The lock covers only the queue insert (the [lock_acquire]
             charge); the scheduler wakeup runs after release — holding a
             spinlock across a wakeup would serialize the whole complex. *)
          let wait =
            Smp.Lock.acquire ~cpu t.delivery_lock ~start:classify_done ~hold:0
          in
          deliver_cost := !deliver_cost + wait + costs.Costs.lock_acquire;
          Stats.incr t.stats "pf.smp.lock_acquire";
          if wait > 0 then begin
            t.smp_lock_waits.(cpu) <- t.smp_lock_waits.(cpu) + 1;
            t.smp_lock_wait_us.(cpu) <- t.smp_lock_wait_us.(cpu) + wait;
            Stats.incr t.stats "pf.smp.lock_contended";
            Stats.incr ~by:wait t.stats "pf.smp.lock_wait_us"
          end;
          san_queue_write ();
          Smp.Lock.release t.delivery_lock ~cpu
        end
      else
        (* Single CPU: the legacy lock-free delivery. The instrumented
           write keeps the queue resource in the sanitizer's Exclusive
           state, so a 1-CPU campaign can never report on it. *)
        san_queue_write ();
      cpu_cost := !cpu_cost + !deliver_cost;
      Cpu.run cpu_exec ~owner:`Interrupt ~start:classify_done ~cost:!deliver_cost
    end
  in
  Stats.incr ~by:!cpu_cost t.stats "pf.demux_cpu_us";
  if accepted then
    Engine.schedule t.engine ~at:finish (fun () ->
        List.iter
          (fun port ->
            let timestamp = if port.timestamps then Some arrival else None in
            enqueue port { packet = frame; timestamp; dropped_before = port.dropped })
          acceptors);
  accepted

(* {1 User side} *)

let copy_out_cost port bytes = Costs.copy_cost port.dev.costs ~bytes

(* User-side dequeue. On a multi-CPU device the port queues are shared with
   every demuxing CPU, so the reading process (on the boot CPU) takes the
   delivery lock around the dequeue; the single-CPU device keeps the legacy
   lock-free path and its exact cost accounting. *)
let locked_dequeue port =
  let t = port.dev in
  if Smp.ncpus t.smp > 1 then begin
    let wait =
      Smp.Lock.acquire ~cpu:0 t.delivery_lock ~start:(Engine.now t.engine)
        ~hold:0
    in
    Process.use_cpu (wait + t.costs.Costs.lock_acquire);
    Stats.incr t.stats "pf.smp.lock_acquire";
    let capture = Queue.take_opt port.queue in
    (match t.san with
    | Some h -> San.write h.checker ~cpu:0 h.res_queue
    | None -> ());
    Smp.Lock.release t.delivery_lock ~cpu:0;
    capture
  end
  else Queue.take_opt port.queue

let rec read_blocking port =
  match locked_dequeue port with
  | Some capture ->
    let copy = copy_out_cost port (Packet.length capture.packet) in
    Process.use_cpu copy;
    Stats.incr ~by:copy port.dev.stats "pf.copy_cpu_us";
    Stats.incr port.dev.stats "pf.reads.delivered";
    Some capture
  | None ->
    if not port.is_open then None
    else begin
      match Condition.await ?timeout:port.timeout port.cond with
      | Some () -> read_blocking port
      | None -> None (* "the read call terminates and reports an error" *)
    end

let read port =
  Process.use_cpu port.dev.costs.Costs.syscall;
  Stats.incr port.dev.stats "pf.syscalls";
  read_blocking port

(* Copy out exactly the packets that were pending when the system call ran —
   not a live tail of later arrivals, which could otherwise keep a busy
   reader inside one read forever. *)
let rec drain port acc remaining =
  if remaining = 0 then List.rev acc
  else begin
    match locked_dequeue port with
    | Some capture ->
      let copy = copy_out_cost port (Packet.length capture.packet) in
      Process.use_cpu copy;
      Stats.incr ~by:copy port.dev.stats "pf.copy_cpu_us";
      Stats.incr port.dev.stats "pf.reads.delivered";
      drain port (capture :: acc) (remaining - 1)
    | None -> List.rev acc
  end

let rec read_batch_blocking port =
  let pending = Queue.length port.queue in
  if pending > 0 then drain port [] pending
  else if not port.is_open then []
  else begin
    match Condition.await ?timeout:port.timeout port.cond with
    | Some () -> read_batch_blocking port
    | None -> []
  end

let read_batch port =
  Process.use_cpu port.dev.costs.Costs.syscall;
  Stats.incr port.dev.stats "pf.syscalls";
  read_batch_blocking port

let write_one port frame =
  let t = port.dev in
  let bytes = Packet.length frame in
  Process.use_cpu
    (Costs.copy_cost t.costs ~bytes
    + t.costs.Costs.send_path
    + (t.costs.Costs.send_per_kbyte * bytes / 1024));
  Stats.incr t.stats "pf.writes";
  t.send frame

let write port frame =
  Process.use_cpu port.dev.costs.Costs.syscall;
  Stats.incr port.dev.stats "pf.syscalls";
  write_one port frame

let write_batch port frames =
  Process.use_cpu port.dev.costs.Costs.syscall;
  Stats.incr port.dev.stats "pf.syscalls";
  List.iter (write_one port) frames

let poll port = Queue.length port.queue

let select ?timeout ports =
  (match ports with
  | [] -> invalid_arg "Pfdev.select: no ports"
  | port :: _ -> Process.use_cpu port.dev.costs.Costs.syscall);
  let ready () = List.filter (fun p -> not (Queue.is_empty p.queue)) ports in
  match ready () with
  | _ :: _ as r -> r
  | [] -> (
    let wait =
      Process.suspend ?timeout (fun deliver ->
          List.iter (fun p -> p.watchers <- deliver :: p.watchers) ports)
    in
    match wait with Some () -> ready () | None -> [])

(* {1 Status} *)

type status = {
  variant : Frame.variant;
  header_length : int;
  address_length : int;
  mtu : int;
  address : Addr.t;
  broadcast : Addr.t;
}

let status (t : t) =
  {
    variant = t.variant;
    header_length = Frame.header_length t.variant;
    address_length = (match t.variant with Frame.Exp3 -> 1 | Frame.Dix10 -> 6);
    mtu = Frame.max_payload t.variant;
    address = t.address;
    broadcast =
      (match t.variant with
      | Frame.Exp3 -> Addr.broadcast_exp
      | Frame.Dix10 -> Addr.broadcast_eth);
  }

let active_ports t = List.length (List.filter (fun p -> p.filter <> None) t.ports)

(* Installed-filter relations, the pseudodevice's analysis status surface:
   which filters can never both accept (safe to reorder within a priority),
   and which ports are dead weight because a higher-priority filter already
   accepts everything they would (and, not being copy-all, consumes it). *)

let filtered_ports t =
  List.filter_map
    (fun p ->
      match p.validated with
      | Some v when p.is_open -> Some (p, v)
      | Some _ | None -> None)
    t.ports

let filter_relations t =
  let rec pairs = function
    | [] -> []
    | (p, v) :: rest ->
      List.map (fun (q, w) -> (p.id, q.id, Pf_filter.Analysis.relate v w)) rest
      @ pairs rest
  in
  pairs (filtered_ports t)

let shadowed_ports t =
  let active = filtered_ports t in
  List.filter_map
    (fun (p, v) ->
      let shadow =
        List.find_opt
          (fun (q, w) ->
            q.priority > p.priority
            && (not q.copy_all)
            &&
            match Pf_filter.Analysis.relate w v with
            | Pf_filter.Analysis.Subsumes | Pf_filter.Analysis.Equivalent -> true
            | _ -> false)
          active
      in
      Option.map (fun (q, _) -> (p, q)) shadow)
    active
