module Process = Pf_sim.Process

type t = {
  host : Host.t;
  pipes : Pipe.t array;
  port : Pfdev.port;
  proc : Process.t;
  mutable running : bool;
  mutable forwarded : int;
}

let start host ?(batch = false) ?(filter = Pf_filter.Predicates.accept_all)
    ?(queue_limit = 32) ~route ~clients () =
  let pipes = Array.init clients (fun _ -> Pipe.create host) in
  let port = Pfdev.open_port (Host.pf host) in
  Pfdev.set_queue_limit port queue_limit;
  (match Pfdev.set_filter port filter with
  | Ok () -> ()
  | Error e ->
    invalid_arg (Format.asprintf "Userdemux.start: %a" Pfdev.pp_install_error e));
  let rec t = lazy { host; pipes; port; proc = Lazy.force proc; running = true; forwarded = 0 }
  and proc =
    lazy
      (Host.spawn host ~name:"demux" (fun () ->
           let t = Lazy.force t in
           let forward capture =
             match route capture.Pfdev.packet with
             | Some i when i >= 0 && i < Array.length t.pipes -> (
               (* A vanished client (closed pipe) is the demultiplexer's
                  SIGPIPE: drop the packet and keep serving the others. *)
               try
                 Pipe.write t.pipes.(i) capture.Pfdev.packet;
                 t.forwarded <- t.forwarded + 1
               with Failure _ -> ())
             | Some _ | None -> ()
           in
           while t.running do
             if batch then List.iter forward (Pfdev.read_batch t.port)
             else
               match Pfdev.read t.port with
               | Some capture -> forward capture
               | None -> ()
           done))
  in
  Lazy.force t

let client_pipe t i = t.pipes.(i)

let stop t =
  t.running <- false;
  Pfdev.close_port t.port;
  Array.iter Pipe.close t.pipes

let process t = t.proc
let forwarded t = t.forwarded
