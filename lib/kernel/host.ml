module Engine = Pf_sim.Engine
module Cpu = Pf_sim.Cpu
module Smp = Pf_sim.Smp
module San = Pf_sim.San
module Costs = Pf_sim.Costs
module Stats = Pf_sim.Stats
module Process = Pf_sim.Process

type t = {
  name : string;
  engine : Engine.t;
  smp : Smp.t; (* CPU 0 is the boot CPU: processes and kernel protocols *)
  steered : bool; (* NIC receive-side steering (the [?ncpus] path) *)
  costs : Costs.t;
  stats : Stats.t;
  nic : Pf_net.Nic.t;
  pf : Pfdev.t;
  mutable extra_interfaces : (Pf_net.Nic.t * Pfdev.t) list; (* beyond the primary *)
  mutable protocols : (int * (Pf_pkt.Packet.t -> unit)) list;
  mutable san_protocols : (San.t * San.resource) option;
      (* the protocol-dispatch table as a sanitized shared resource *)
}

let name t = t.name
let engine t = t.engine
let cpu t = Smp.cpu t.smp 0
let smp t = t.smp
let ncpus t = Smp.ncpus t.smp
let costs t = t.costs
let stats t = t.stats
let nic t = t.nic
let addr t = Pf_net.Nic.addr t.nic
let pf t = t.pf

(* One receive path per interface: driver interrupt (on the receive CPU the
   NIC steered the frame to; CPU 0 without steering), then the type-field
   dispatch between host-wide kernel protocols and that interface's packet
   filter unit. Kernel-resident protocol handlers charge their own work via
   [in_kernel], which runs on the boot CPU — only the interrupt half of the
   receive path scales across CPUs, as in real kernels before per-CPU
   protocol processing. *)
let rx t nic pf ~cpu:cpu_id frame =
  Stats.incr t.stats "host.rx";
  Stats.incr ~by:t.costs.Costs.recv_interrupt t.stats "host.interrupt_cpu_us";
  let finish =
    Cpu.run (Smp.cpu t.smp cpu_id) ~owner:`Interrupt ~start:(Engine.now t.engine)
      ~cost:t.costs.Costs.recv_interrupt
  in
  Engine.schedule t.engine ~at:finish (fun () ->
      (* The type-field dispatch reads the host-wide protocol table on the
         receive CPU; the demux-side instrumentation carries the modeled
         cost, this read only feeds the checker. *)
      (match t.san_protocols with
      | Some (san, res) -> San.read san ~cpu:cpu_id res
      | None -> ());
      let ethertype =
        Option.map (fun (h : Pf_net.Frame.header) -> h.ethertype)
          (Pf_net.Frame.header (Pf_net.Nic.variant nic) frame)
      in
      let kernel_handler =
        match ethertype with
        | Some ty -> List.assoc_opt ty t.protocols
        | None -> None
      in
      match kernel_handler with
      | Some handler ->
        Stats.incr t.stats "host.rx.kernel_proto";
        ignore (Pfdev.demux pf ~cpu:cpu_id ~kernel_claimed:true frame : bool);
        handler frame
      | None ->
        if not (Pfdev.demux pf ~cpu:cpu_id frame) then
          Stats.incr t.stats "host.rx.unclaimed")

(* Wire an interface's receive side. With steering, the NIC's receive
   hashing ({!Pfdev.steer}: the flow-cache key bytes modulo the CPU count)
   picks the queue, and queues map to CPUs one-to-one — same flow, same
   CPU, so each CPU's flow cache stays private and warm. *)
let wire_rx t nic pf =
  if t.steered then
    Pf_net.Nic.set_rss nic ~hash:(Pfdev.steer pf) ~rx:(fun ~queue frame ->
        rx t nic pf ~cpu:queue frame)
  else Pf_net.Nic.set_rx nic (rx t nic pf ~cpu:0)

let create ?(costs = Costs.microvax_ii) ?ncpus link ~name ~addr =
  let engine = Pf_net.Link.engine link in
  let smp, steered =
    match ncpus with
    | None -> (Smp.create ~ncpus:1 engine costs, false)
    | Some n -> (Smp.create ~ncpus:n engine costs, true)
  in
  let stats = Stats.create () in
  let nic = Pf_net.Nic.create link ~addr in
  let pf =
    Pfdev.create_smp engine smp costs stats ~variant:(Pf_net.Link.variant link)
      ~address:addr
      ~send:(fun frame -> Pf_net.Nic.send_frame nic frame)
  in
  let t =
    {
      name;
      engine;
      smp;
      steered;
      costs;
      stats;
      nic;
      pf;
      extra_interfaces = [];
      protocols = [];
      san_protocols = None;
    }
  in
  wire_rx t nic pf;
  t

(* Attach a concurrency sanitizer to the whole host: the primary packet
   filter device registers its shared objects ({!Pfdev.attach_san}, which
   also wires {!Smp.set_san} so lock and IPI edges flow in), and the
   host-wide protocol-dispatch table joins the registry as an
   IPI-published resource written only by boot-CPU configuration. *)
let attach_san t san =
  Pfdev.attach_san t.pf san;
  let res =
    San.register san ~name:"host.protocols" ~discipline:San.Ipi_published
  in
  San.declare_site san ~site:"Host.register_protocol" ~ctx:San.Boot ~locks:[]
    ~rw:`Write res;
  San.declare_site san ~site:"Host.rx:dispatch" ~ctx:San.Any_cpu ~locks:[]
    ~rw:`Read res;
  t.san_protocols <- Some (san, res)

let san t = Pfdev.san t.pf

let add_interface t link ~addr =
  let nic = Pf_net.Nic.create link ~addr in
  let pf =
    Pfdev.create_smp t.engine t.smp t.costs t.stats
      ~variant:(Pf_net.Link.variant link) ~address:addr
      ~send:(fun frame -> Pf_net.Nic.send_frame nic frame)
  in
  wire_rx t nic pf;
  t.extra_interfaces <- t.extra_interfaces @ [ (nic, pf) ];
  (nic, pf)

(* Drive the primary interface's receive path directly, bypassing link
   arbitration and serialization — a packet source faster than any simulated
   wire, for scaling experiments where the link would otherwise be the
   bottleneck. Steering still applies. *)
let inject t frame =
  Stats.incr t.stats "host.inject";
  let cpu_id = if t.steered then Pfdev.steer t.pf frame else 0 in
  rx t t.nic t.pf ~cpu:cpu_id frame

let interfaces t = (t.nic, t.pf) :: t.extra_interfaces
let join_multicast t group = Pf_net.Nic.join_multicast t.nic group

let spawn t ~name body = Process.spawn t.engine (cpu t) ~name body

(* Registration is a boot-CPU configuration action; in a real kernel it
   completes (with the table write globally visible) before any frame of
   the new type can be dispatched. Model that visibility barrier as
   explicit publication edges to every CPU — without them, a remote
   receive CPU's table read would look unordered after the write. *)
let san_protocols_write t =
  match t.san_protocols with
  | None -> ()
  | Some (san, res) ->
    San.write san ~cpu:0 res;
    for k = 1 to Smp.ncpus t.smp - 1 do
      let m = San.ipi_send san ~src:0 in
      San.ipi_receive san ~dst:k m
    done

let register_protocol t ~ethertype handler =
  t.protocols <- (ethertype, handler) :: List.remove_assoc ethertype t.protocols;
  san_protocols_write t

let unregister_protocol t ~ethertype =
  t.protocols <- List.remove_assoc ethertype t.protocols;
  san_protocols_write t

let in_kernel t ~cost k =
  let finish = Cpu.run (cpu t) ~owner:`Interrupt ~start:(Engine.now t.engine) ~cost in
  Engine.schedule t.engine ~at:finish k

let kernel_send t ~cost frame =
  in_kernel t ~cost (fun () ->
      Stats.incr t.stats "host.tx.kernel";
      Pf_net.Nic.send_frame t.nic frame)

let set_promiscuous t flag = Pf_net.Nic.set_promiscuous t.nic flag
