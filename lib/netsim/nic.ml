type rss = {
  hash : Pf_pkt.Packet.t -> int; (* frame -> receive queue/CPU *)
  queue_rx : queue:int -> Pf_pkt.Packet.t -> unit;
  mutable per_queue : int array; (* frames steered per queue, grown on demand *)
}

type t = {
  link : Link.t;
  addr : Addr.t;
  endpoint : Link.endpoint;
  mutable rx : (Pf_pkt.Packet.t -> unit) option;
  mutable rss : rss option; (* multi-queue steering; wins over [rx] *)
  mutable sent : int;
  mutable received : int;
  mutable dropped : int;
}

let create link ~addr =
  let rec nic =
    lazy
      (let endpoint = Link.attach link ~addr ~rx:(fun frame -> deliver (Lazy.force nic) frame) in
       { link; addr; endpoint; rx = None; rss = None; sent = 0; received = 0; dropped = 0 })
  and deliver nic frame =
    match nic.rss with
    | Some r ->
      nic.received <- nic.received + 1;
      let queue = r.hash frame in
      if queue >= Array.length r.per_queue then begin
        let grown = Array.make (queue + 1) 0 in
        Array.blit r.per_queue 0 grown 0 (Array.length r.per_queue);
        r.per_queue <- grown
      end;
      r.per_queue.(queue) <- r.per_queue.(queue) + 1;
      r.queue_rx ~queue frame
    | None -> (
      match nic.rx with
      | Some handler ->
        nic.received <- nic.received + 1;
        handler frame
      | None -> nic.dropped <- nic.dropped + 1)
  in
  Lazy.force nic

let addr t = t.addr
let link t = t.link
let variant t = Link.variant t.link
let set_rx t handler = t.rx <- Some handler

let set_rss t ~hash ~rx =
  t.rss <- Some { hash; queue_rx = rx; per_queue = Array.make 1 0 }

let queue_frames t =
  match t.rss with None -> [||] | Some r -> Array.copy r.per_queue
let set_promiscuous t flag = Link.set_promiscuous t.endpoint flag
let join_multicast t group = Link.join_multicast t.endpoint group
let leave_multicast t group = Link.leave_multicast t.endpoint group

let send_frame t frame =
  t.sent <- t.sent + 1;
  Link.transmit t.link ~from:t.endpoint frame

let send t ~dst ~ethertype payload =
  send_frame t (Frame.encode (variant t) ~dst ~src:t.addr ~ethertype payload)

let frames_sent t = t.sent
let frames_received t = t.received
let frames_dropped t = t.dropped
