(** A network interface: one station's attachment to a {!Link}.

    The receive handler is installed by the kernel ({!Pf_kernel.Host}); it
    runs in interrupt context at frame-arrival time. *)

type t

val create : Link.t -> addr:Addr.t -> t
val addr : t -> Addr.t
val link : t -> Link.t
val variant : t -> Frame.variant

val set_rx : t -> (Pf_pkt.Packet.t -> unit) -> unit
(** Replaces the receive handler (frames arriving before one is installed
    are counted as dropped). *)

val set_rss : t -> hash:(Pf_pkt.Packet.t -> int) -> rx:(queue:int -> Pf_pkt.Packet.t -> unit) -> unit
(** Receive-side steering: the NIC hashes each arriving frame ([hash] runs
    in the receive hardware, free of simulated cost) to pick a receive
    queue, then hands the frame to [rx] with that queue. Once installed,
    steering takes precedence over the single-queue {!set_rx} handler.
    The kernel maps queues to CPUs one-to-one. *)

val queue_frames : t -> int array
(** Frames steered per receive queue so far ([[||]] when RSS is not
    configured). *)

val set_promiscuous : t -> bool -> unit
(** Receive every frame on the segment, for network monitoring (§5.4). *)

val join_multicast : t -> Addr.t -> unit
(** Accept a multicast group address (§5.2). *)

val leave_multicast : t -> Addr.t -> unit

val send : t -> dst:Addr.t -> ethertype:int -> Pf_pkt.Packet.t -> unit
(** Frame a payload and transmit it. *)

val send_frame : t -> Pf_pkt.Packet.t -> unit
(** Transmit a pre-framed packet unchanged — the packet filter's write path,
    where "the user presents a buffer containing a complete packet, including
    data-link header" (§3). *)

val frames_sent : t -> int
val frames_received : t -> int
val frames_dropped : t -> int
