(** The calibrated cost model.

    Every constant is an {e input} taken from the paper's primitive
    measurements of a MicroVAX-II running Ultrix 1.2 (section 6.5.2 and
    section 7), not from the result tables the benchmarks reproduce:

    - "about 0.4 mSec of CPU time to switch between processes"
    - "about 0.5 mSec of CPU time to transfer a short packet between the
      kernel and a process" and "data copying requires about 1 mSec/Kbyte"
    - table 6-10's slope: (2.5 − 1.9) ms over 21 instructions ≈ 29 µs per
      filter instruction
    - "it takes about 1 mSec to send a datagram" (driver + queueing)
    - microtime costs "about 70 uSec" (on a VAX-11/780)

    The remaining constants (interrupt-level receive processing, protocol
    processing, syscall overhead) are set so the {e primitive} paths agree
    with the paper's analytical model (section 6.5.1), and are then held
    fixed across all experiments. *)

type t = {
  context_switch : Time.t;  (** process-to-process switch, 400 µs *)
  syscall : Time.t;  (** user/kernel domain crossing per system call, in+out *)
  copy_base : Time.t;  (** fixed part of a kernel<->user data transfer *)
  copy_per_kbyte : Time.t;  (** 1 ms/KByte *)
  filter_insn : Time.t;  (** interpreting one filter instruction *)
  filter_apply : Time.t;  (** fixed per-filter application overhead *)
  recv_interrupt : Time.t;
      (** device driver receive processing per packet, incl. the 4.3BSD
          header-restore work section 7 grumbles about *)
  send_path : Time.t;  (** device driver send path, "about 1 mSec" *)
  send_per_kbyte : Time.t;  (** extra per-byte transmit cost beyond the copy *)
  proto_user_per_packet : Time.t;
      (** user-level protocol module work per packet (header build/parse,
          state machine) *)
  proto_kernel_per_packet : Time.t;
      (** same work done by kernel-resident protocol code, which is leaner
          (no library layering), per the 3x gap in section 6.1 *)
  ip_overhead : Time.t;  (** extra kernel IP-layer work: routing, options *)
  checksum_per_kbyte : Time.t;  (** TCP checksums all data; VMTP/BSP do not *)
  pipe_transfer : Time.t;  (** fixed cost of moving a packet through a pipe *)
  timestamp : Time.t;  (** microtime call when packets are timestamped *)
  wakeup : Time.t;  (** scheduler work to make a blocked process runnable *)
  cache_probe : Time.t;
      (** fixed part of a demux flow-cache lookup or insert (hash dispatch,
          bucket probe, verdict copy) — a handful of VAX instructions *)
  cache_hash_word : Time.t;
      (** per key word: loading one packet word at a read-set offset,
          folding it into the hash, and comparing it on a probe *)
  dispatch_probe : Time.t;
      (** fixed part of classifying a packet against one dispatch-automaton
          group (hash dispatch over the group's slot table) *)
  dispatch_hash_word : Time.t;
      (** per guard word: loading one packet word at a group offset and
          folding it into the slot key *)
  regvm_apply : Time.t;
      (** fixed per-filter overhead when applying a register-VM compiled
          filter (register file setup instead of stack setup) *)
  regvm_insn : Time.t;
      (** executing one register-IR instruction: ≈ 0.62x the stack
          interpreter's {!filter_insn} — three-address dispatch avoids the
          stack-pointer traffic and operand shuffling each stack step pays,
          consistent with the register-vs-stack gap the BPF lineage
          measured *)
  lock_acquire : Time.t;
      (** uncontended acquire + release of a kernel spinlock: a pair of
          interlocked bus operations plus bookkeeping, ≈ half a {!syscall}
          crossing's instruction count on the same calibration. Contended
          acquisitions additionally spin for the remaining hold time
          ({!Smp.Lock}) *)
  ipi_send : Time.t;
      (** posting an interprocessor interrupt from the sending CPU: write
          the mailbox, strobe the doorbell register *)
  ipi_receive : Time.t;
      (** fielding an interprocessor interrupt on the target CPU: interrupt
          entry, handler dispatch, exit — calibrated as a cheap interrupt,
          a fraction of {!recv_interrupt}'s device work *)
  ipi_latency : Time.t;
      (** bus propagation delay between doorbell strobe and the target CPU
          taking the interrupt *)
  san_access : Time.t;
      (** concurrency-sanitizer bookkeeping charged per instrumented
          shared-state access when a {!San.t} is attached: a shadow-word
          load, a vector-clock component bump, and a compare — the modeled
          analogue of a TSan shadow-cell update. Zero cost when no
          sanitizer is attached *)
}

val microvax_ii : t
(** The MicroVAX-II / Ultrix 1.2 calibration above. *)

val vax_780 : t
(** VAX-11/780: the section 6.1 profiling host. Roughly comparable CPU to
    the MicroVAX-II for this workload (the paper uses both interchangeably);
    modeled as [scale 1.0] with the documented 70 µs microtime. *)

val scale : float -> t -> t
(** Multiply every constant (a faster or slower CPU). *)

val copy_cost : t -> bytes:int -> Time.t
(** [copy_base + bytes * copy_per_kbyte / 1024]. *)

val checksum_cost : t -> bytes:int -> Time.t
val free : t
(** All-zero cost model, for functional (non-timing) tests. *)
