(** An SMP complex: N {!Cpu.t}s sharing one discrete-event {!Engine}, with
    the two cross-CPU cost primitives a multiprocessor kernel pays for —
    costed spinlocks and costed interprocessor interrupts.

    The single-CPU complex ([ncpus = 1]) is cost-identical to a bare
    {!Cpu.t}: no locks are ever contended, no IPIs ever sent, so every
    single-processor simulation keeps its exact legacy accounting.

    Determinism: all cross-CPU scheduling here iterates CPUs in ascending
    id order, so the engine's (time, sequence) order coincides with a
    (time, CPU id, sequence) tie-break and repeated runs are bit-identical. *)

type t

val create : ?ncpus:int -> Engine.t -> Costs.t -> t
(** Fresh CPUs; [ncpus] defaults to 1. *)

val of_cpus : Engine.t -> Costs.t -> Cpu.t array -> t
(** Wrap existing CPUs (the compatibility path for code that built its own
    {!Cpu.t}). *)

val ncpus : t -> int
val costs : t -> Costs.t
val engine : t -> Engine.t

val cpu : t -> int -> Cpu.t
(** CPU by id, [0 .. ncpus-1]. CPU 0 is the boot CPU: user processes and
    kernel-resident protocol work run there. *)

val ipi : t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Post an interprocessor interrupt: charges {!Costs.t.ipi_send} on [src]
    now, then after {!Costs.t.ipi_latency} charges {!Costs.t.ipi_receive}
    on [dst] and runs the callback when that interrupt work retires. *)

val ipi_broadcast : t -> src:int -> (int -> unit) -> unit
(** One {!ipi} to every CPU except [src], in ascending id order. *)

val ipis_sent : t -> int -> int
val ipis_received : t -> int -> int
val total_ipis : t -> int

val set_san : t -> San.t -> unit
(** Attach a concurrency sanitizer: every subsequent {!ipi} carries a
    happens-before token from sender to receiver, and every
    {!Lock.acquire}/{!Lock.release} advances the acquiring CPU's vector
    clock. Attaching never changes costs, event order, or counters. *)

val san : t -> San.t option

(** A costed spinlock: models the virtual time a CPU burns spinning on a
    lock word another CPU holds. The simulation is single-threaded, so the
    lock serializes nothing for real — it only accounts contention.

    The lock model additionally tracks {e logical} ownership (which CPU
    holds the lock between acquire and release) purely for misuse
    detection: reentrant acquire, double release, and release by a
    non-owner are recorded in {!misuses} and reported to an attached
    {!San.t}, without ever perturbing the time accounting. *)
module Lock : sig
  type lock

  type misuse =
    | Reentrant_acquire of int  (** acquiring CPU already held the lock *)
    | Double_release of int  (** released while nobody held it *)
    | Release_by_non_owner of { cpu : int; owner : int }

  val create : ?name:string -> t -> lock
  (** [name] (default ["lock"]) identifies the lock in sanitizer reports
      and lockset tracking. *)

  val name : lock -> string

  val acquire : ?cpu:int -> lock -> start:Time.t -> hold:Time.t -> Time.t
  (** [acquire l ~start ~hold] acquires at virtual time [start], holding
      the lock for [Costs.lock_acquire + hold] once granted. Returns the
      {e wait}: how long the acquiring CPU spun before the grant (0 when
      uncontended). The caller charges [wait + Costs.lock_acquire + hold]
      to its own CPU — the spin burns the acquirer's cycles. [cpu]
      (default 0) is the acquiring CPU, used only for ownership tracking
      and sanitizer edges. *)

  val release : lock -> cpu:int -> unit
  (** Logical release by [cpu]. Purely bookkeeping — the virtual-time hold
      was already fixed by {!acquire}'s [hold] — but it closes the
      ownership window, checks for double release / release by non-owner,
      and emits the sanitizer's release edge. *)

  val acquisitions : lock -> int
  val contended : lock -> int
  (** Acquisitions that had to spin. *)

  val wait_time : lock -> Time.t
  (** Total virtual time spent spinning. *)

  val misuses : lock -> misuse list
  (** Detected misuses in detection order. *)

  val misuse_name : misuse -> string
  val pp_misuse : Format.formatter -> misuse -> unit
end

type lock = Lock.lock
