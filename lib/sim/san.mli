(** Pfsan: a lockset + happens-before concurrency sanitizer for the
    simulated SMP kernel.

    The deterministic simulator drives the checker: kernel code declares
    every shared object in a {e resource registry} together with its
    locking discipline, then routes each access through {!read}/{!write}.
    The checker maintains Eraser-style candidate locksets per resource and
    per-CPU vector clocks advanced by lock acquire/release and IPI edges,
    and reports:

    - an access to a [Guarded_by] resource whose candidate lockset
      intersection goes empty once the resource is shared ({e lockset
      violation});
    - an access to a [Cpu_private] resource from any CPU but its owner;
    - a read of an [Ipi_published] resource that is not happens-after the
      latest conflicting write ({e missing synchronization edge});
    - a flow-cache hit served from an entry that predates the last
      acceptor-changing mutation ({e stale hit} — the cache-coherence
      protocol checker);
    - lock misuse funneled from the lock model itself (double release,
      release by non-owner, reentrant acquire).

    Everything here is bookkeeping over the virtual execution: attaching a
    sanitizer never changes verdicts or event order. The simulated cost of
    instrumentation is charged by the kernel ({!Costs.t.san_access} per
    instrumented access), so `bench smp` can measure the modeled overhead.

    What Pfsan can and cannot prove: the simulator serializes all events on
    one OS thread, so no physical data race ever corrupts state — Pfsan
    checks the {e discipline} (would this access have been safe on real
    silicon?) from the trace alone. Remote cache flushes are performed
    synchronously by the simulator (only their IPI cost is modeled), so the
    protocol checker treats a full invalidation broadcast as synchronizing
    at issue time; what it verifies is that every acceptor-changing
    mutation reaches every CPU before that CPU serves another cache hit. *)

type t

type resource

(** How a registered shared object is allowed to be accessed. *)
type discipline =
  | Guarded_by of string
      (** every access once shared must hold the named lock *)
  | Cpu_private of int  (** only the owning CPU may touch it *)
  | Ipi_published
      (** written by one CPU, published to the others by IPI/invalidation
          edges; reads must be happens-after the latest write *)

val create : ?stats:Stats.t -> ncpus:int -> unit -> t
(** A fresh checker for an [ncpus]-CPU complex. When [stats] is given,
    every counter is mirrored there under ["pf.san.*"] keys (the surface
    [pfmon] and [pftool smp --san] print). *)

val ncpus : t -> int

(** {1 The shared-resource registry} *)

val register : t -> name:string -> discipline:discipline -> resource
val resource_name : resource -> string
val registry : t -> (string * discipline) list
(** Registration order. *)

val pp_discipline : Format.formatter -> discipline -> unit

(** {1 Instrumented accesses} *)

val read : t -> cpu:int -> resource -> unit
val write : t -> cpu:int -> resource -> unit

(** {1 Synchronization edges} *)

val lock_acquired : t -> cpu:int -> string -> unit
(** The CPU now holds the named lock: joins the acquirer's vector clock
    with the lock's release clock and adds the lock to the CPU's held
    set. Driven by {!Smp.Lock.acquire}. *)

val lock_released : t -> cpu:int -> string -> unit

type msg
(** A happens-before token carried by an in-flight IPI. *)

val ipi_send : t -> src:int -> msg
val ipi_receive : t -> dst:int -> msg -> unit

val lock_misuse : t -> cpu:int -> lock:string -> kind:string -> unit
(** Funnel for the lock model's own misuse detection (double release,
    release by non-owner, reentrant acquire). *)

(** {1 The cache-coherence protocol checker}

    One coherence domain per checker: the device's acceptor configuration
    (its port table). [publish] is an acceptor-changing mutation; [sync]
    is a CPU observing the invalidation (its cache flush); [note_store]
    and [note_hit] shadow the per-CPU flow caches. A hit on an entry
    stored under an older configuration epoch — possible only when some
    mutation skipped that CPU's invalidation — is reported as a stale
    hit naming the mutating CPU, the serving CPU, and the missing
    invalidation edge. *)

val publish : t -> cpu:int -> resource -> unit
val sync : t -> cpu:int -> resource -> unit
val note_store : t -> cpu:int -> resource -> key:string -> unit
val note_hit : t -> cpu:int -> resource -> key:string -> unit

(** {1 Reports} *)

type kind =
  | Lockset_violation
  | Cpu_private_violation
  | Unordered_access
  | Stale_cache_hit
  | Lock_misuse

type report = {
  kind : kind;
  resource : string;
  cpus : int list;  (** involved CPUs: prior/owner first, violator last *)
  missing : string;  (** the missing lock or synchronization edge *)
  detail : string;
  occurrences : int;  (** identical violations are deduplicated *)
}

val reports : t -> report list
(** Unique reports in first-occurrence order. *)

val report_count : t -> int
(** Total violations observed (before deduplication). *)

val kind_name : kind -> string
val pp_report : Format.formatter -> report -> unit
val pp : Format.formatter -> t -> unit
(** Counter summary plus every report. *)

val counters : t -> (string * int) list
(** The ["pf.san.*"] counter set (sorted by key), independent of whether a
    {!Stats.t} was attached. *)

(** {1 Static lock-discipline lint}

    Kernel code additionally declares its {e access sites} — where in the
    source each resource is touched, under which locks (in acquisition
    order), from which CPU context — and, optionally, an intended
    lock-order DAG. {!Lint.run} walks those declarations against the
    registry without running any traffic. *)

type ctx = Boot | On_cpu of int | Any_cpu

val declare_lock : t -> string -> unit
val declare_lock_order : t -> before:string -> after:string -> unit
(** An intended ordering edge: [before] may be held while acquiring
    [after], never the reverse. *)

val declare_site :
  t ->
  site:string ->
  ctx:ctx ->
  locks:string list ->
  rw:[ `Read | `Write ] ->
  resource ->
  unit

module Lint : sig
  type finding = {
    kind : [ `Undeclared_sharing | `Inconsistent_guard | `Lock_order_inversion ];
    subject : string;  (** the resource or lock cycle at fault *)
    detail : string;
  }

  val run : t -> finding list
  val kind_name : finding -> string
  val pp_finding : Format.formatter -> finding -> unit
end
