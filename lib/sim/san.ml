(* Pfsan: lockset + happens-before concurrency sanitizer for the simulated
   SMP kernel. See san.mli for the model; the implementation notes here are
   about bookkeeping shape only.

   Vector clocks: one int array of length ncpus per CPU. Each instrumented
   event ticks the acting CPU's own component; lock release copies the
   releaser's clock into the lock, acquire joins it back; an IPI carries the
   sender's clock to the receiver. "w happens-before this access on cpu c"
   is then the usual test: vc.(c).(w_cpu) >= w_clock.

   Locksets: Eraser's state machine per resource (virgin -> exclusive ->
   shared / shared-modified), candidate set = intersection of the lock sets
   held at every shared access, Top until the first shared access. A report
   fires when the candidate set goes empty while the resource has been
   written by more than one CPU.

   The coherence protocol checker is a single epoch domain (the device's
   acceptor configuration): publish bumps the epoch, sync pins a CPU to the
   current epoch and clears its cache shadow, stores stamp the epoch,
   and a hit on an entry stamped before the current epoch is a stale hit. *)

type discipline = Guarded_by of string | Cpu_private of int | Ipi_published

type kind =
  | Lockset_violation
  | Cpu_private_violation
  | Unordered_access
  | Stale_cache_hit
  | Lock_misuse

type report = {
  kind : kind;
  resource : string;
  cpus : int list;
  missing : string;
  detail : string;
  occurrences : int;
}

type lockset = Top | Locks of string list

type rstate = Virgin | Exclusive of int | Shared | Shared_modified

type resource = {
  id : int;
  name : string;
  discipline : discipline;
  mutable state : rstate;
  mutable lockset : lockset;
  mutable last_write : (int * int) option; (* cpu, that cpu's clock at write *)
}

type lock_state = { lname : string; mutable lvc : int array }

type ctx = Boot | On_cpu of int | Any_cpu

type site = {
  site : string;
  sctx : ctx;
  slocks : string list; (* acquisition order *)
  srw : [ `Read | `Write ];
  sresource : resource;
}

type msg = int array

type t = {
  ncpus : int;
  stats : Stats.t option;
  counts : (string, int ref) Hashtbl.t;
  vc : int array array; (* per-CPU vector clock *)
  held : string list array; (* per-CPU held-lock stack, innermost first *)
  locks : (string, lock_state) Hashtbl.t;
  mutable resources : resource list; (* reverse registration order *)
  mutable next_id : int;
  (* reports, deduplicated by (kind, resource, missing) *)
  mutable reports : report ref list; (* reverse first-occurrence order *)
  seen : (string, report ref) Hashtbl.t;
  mutable total_reports : int;
  (* coherence protocol *)
  mutable epoch : int;
  mutable publisher : int; (* CPU of the latest publish *)
  pub_vc : int array; (* publisher's clock at the latest publish *)
  shadow : (int * string, int) Hashtbl.t; (* (cpu, key) -> store epoch *)
  (* static lint inputs *)
  mutable declared_locks : string list; (* reverse *)
  mutable lock_order : (string * string) list; (* declared before/after edges *)
  mutable sites : site list; (* reverse *)
}

let create ?stats ~ncpus () =
  if ncpus < 1 then invalid_arg "San.create: ncpus must be at least 1";
  {
    ncpus;
    stats;
    counts = Hashtbl.create 32;
    vc = Array.init ncpus (fun _ -> Array.make ncpus 0);
    held = Array.make ncpus [];
    locks = Hashtbl.create 8;
    resources = [];
    next_id = 0;
    reports = [];
    seen = Hashtbl.create 16;
    total_reports = 0;
    epoch = 0;
    publisher = 0;
    pub_vc = Array.make ncpus 0;
    shadow = Hashtbl.create 64;
    declared_locks = [];
    lock_order = [];
    sites = [];
  }

let ncpus t = t.ncpus

let count t key =
  (match Hashtbl.find_opt t.counts key with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts key (ref 1));
  match t.stats with Some s -> Stats.incr s ("pf.san." ^ key) | None -> ()

let counters t =
  Hashtbl.fold (fun k r acc -> ("pf.san." ^ k, !r) :: acc) t.counts []
  |> List.sort compare

let check_cpu t cpu who =
  if cpu < 0 || cpu >= t.ncpus then
    invalid_arg (Printf.sprintf "San.%s: no such CPU %d" who cpu)

(* {1 Registry} *)

let register t ~name ~discipline =
  (match discipline with
  | Cpu_private k -> check_cpu t k "register"
  | Guarded_by _ | Ipi_published -> ());
  let r =
    {
      id = t.next_id;
      name;
      discipline;
      state = Virgin;
      lockset = Top;
      last_write = None;
    }
  in
  t.next_id <- t.next_id + 1;
  t.resources <- r :: t.resources;
  r

let resource_name r = r.name

let registry t =
  List.rev_map (fun r -> (r.name, r.discipline)) t.resources

let pp_discipline ppf = function
  | Guarded_by l -> Format.fprintf ppf "guarded by %s" l
  | Cpu_private k -> Format.fprintf ppf "private to cpu %d" k
  | Ipi_published -> Format.pp_print_string ppf "ipi-published"

(* {1 Reports} *)

let kind_name = function
  | Lockset_violation -> "lockset"
  | Cpu_private_violation -> "cpu-private"
  | Unordered_access -> "unordered"
  | Stale_cache_hit -> "stale-hit"
  | Lock_misuse -> "lock-misuse"

let kind_counter = function
  | Lockset_violation -> "lockset_violations"
  | Cpu_private_violation -> "cpu_private_violations"
  | Unordered_access -> "hb_violations"
  | Stale_cache_hit -> "stale_hits"
  | Lock_misuse -> "lock_misuses"

let report t ~kind ~resource ~cpus ~missing ~detail =
  let cpus = List.sort_uniq compare cpus in
  t.total_reports <- t.total_reports + 1;
  count t "reports";
  count t (kind_counter kind);
  let key = kind_name kind ^ "\000" ^ resource ^ "\000" ^ missing in
  match Hashtbl.find_opt t.seen key with
  | Some r -> r := { !r with occurrences = !r.occurrences + 1 }
  | None ->
    let r = ref { kind; resource; cpus; missing; detail; occurrences = 1 } in
    Hashtbl.add t.seen key r;
    t.reports <- r :: t.reports

let reports t = List.rev_map (fun r -> !r) t.reports
let report_count t = t.total_reports

let pp_cpus ppf cpus =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    (fun ppf c -> Format.fprintf ppf "cpu%d" c)
    ppf cpus

let pp_report ppf r =
  Format.fprintf ppf "SAN %s: %s [%a] %s (missing: %s)%s" (kind_name r.kind)
    r.resource pp_cpus r.cpus r.detail r.missing
    (if r.occurrences > 1 then Printf.sprintf " [x%d]" r.occurrences else "")

let pp ppf t =
  Format.fprintf ppf "san: %d cpus, %d resources, %d accesses, %d report(s)"
    t.ncpus (List.length t.resources)
    (match Hashtbl.find_opt t.counts "accesses" with Some r -> !r | None -> 0)
    t.total_reports;
  List.iter (fun r -> Format.fprintf ppf "@\n  %a" pp_report r) (reports t)

(* {1 Vector clocks and synchronization edges} *)

let tick t cpu = t.vc.(cpu).(cpu) <- t.vc.(cpu).(cpu) + 1

let join dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let lock_state t name =
  match Hashtbl.find_opt t.locks name with
  | Some l -> l
  | None ->
    let l = { lname = name; lvc = Array.make t.ncpus 0 } in
    Hashtbl.add t.locks name l;
    l

let lock_acquired t ~cpu name =
  check_cpu t cpu "lock_acquired";
  let l = lock_state t name in
  join t.vc.(cpu) l.lvc;
  tick t cpu;
  t.held.(cpu) <- name :: t.held.(cpu);
  count t "lock_edges"

let lock_released t ~cpu name =
  check_cpu t cpu "lock_released";
  let l = lock_state t name in
  join l.lvc t.vc.(cpu);
  tick t cpu;
  (* remove one occurrence (the innermost) *)
  let rec drop = function
    | [] -> []
    | n :: rest when n = name -> rest
    | n :: rest -> n :: drop rest
  in
  t.held.(cpu) <- drop t.held.(cpu);
  count t "lock_edges"

let ipi_send t ~src =
  check_cpu t src "ipi_send";
  let m = Array.copy t.vc.(src) in
  tick t src;
  count t "ipi_edges";
  m

let ipi_receive t ~dst m =
  check_cpu t dst "ipi_receive";
  join t.vc.(dst) m;
  tick t dst;
  count t "ipi_edges"

let lock_misuse t ~cpu ~lock ~kind =
  check_cpu t cpu "lock_misuse";
  report t ~kind:Lock_misuse ~resource:lock ~cpus:[ cpu ]
    ~missing:(kind ^ " on " ^ lock)
    ~detail:(Printf.sprintf "%s by cpu %d" kind cpu)

(* {1 Accesses} *)

let inter ls held =
  match ls with
  | Top -> Locks held
  | Locks l -> Locks (List.filter (fun n -> List.mem n held) l)

let access t ~cpu ~is_write r =
  check_cpu t cpu "access";
  tick t cpu;
  count t "accesses";
  count t (if is_write then "writes" else "reads");
  (match r.discipline with
  | Cpu_private owner ->
    if cpu <> owner then
      report t ~kind:Cpu_private_violation ~resource:r.name
        ~cpus:[ owner; cpu ]
        ~missing:(Printf.sprintf "cpu affinity (owner cpu %d)" owner)
        ~detail:
          (Printf.sprintf "%s by cpu %d of a cpu-%d-private resource"
             (if is_write then "write" else "read")
             cpu owner)
  | Guarded_by guard -> (
    (* Eraser: candidate locksets are only refined (and violations only
       reported) once the resource is genuinely shared between CPUs. *)
    let refine () =
      r.lockset <- inter r.lockset t.held.(cpu);
      match r.lockset with
      | Locks [] when r.state = Shared_modified ->
        let prior =
          match r.last_write with Some (w, _) -> [ w; cpu ] | None -> [ cpu ]
        in
        report t ~kind:Lockset_violation ~resource:r.name ~cpus:prior
          ~missing:guard
          ~detail:
            (Printf.sprintf
               "%s by cpu %d with no common lock held (declared guard: %s)"
               (if is_write then "write" else "read")
               cpu guard)
      | _ -> ()
    in
    match r.state with
    | Virgin -> r.state <- Exclusive cpu
    | Exclusive c when c = cpu -> ()
    | Exclusive _ ->
      r.state <- (if is_write || r.last_write <> None then Shared_modified else Shared);
      refine ()
    | Shared ->
      if is_write then r.state <- Shared_modified;
      refine ()
    | Shared_modified -> refine ())
  | Ipi_published -> (
    match r.last_write with
    | Some (w_cpu, w_clk) when w_cpu <> cpu && t.vc.(cpu).(w_cpu) < w_clk ->
      report t ~kind:Unordered_access ~resource:r.name ~cpus:[ w_cpu; cpu ]
        ~missing:(Printf.sprintf "ipi %d->%d" w_cpu cpu)
        ~detail:
          (Printf.sprintf
             "%s by cpu %d is not ordered after the latest write by cpu %d"
             (if is_write then "write" else "read")
             cpu w_cpu)
    | _ -> ()));
  if is_write then begin
    r.last_write <- Some (cpu, t.vc.(cpu).(cpu));
    match r.state with
    | Shared -> r.state <- Shared_modified
    | Virgin | Exclusive _ | Shared_modified -> ()
  end

let read t ~cpu r = access t ~cpu ~is_write:false r
let write t ~cpu r = access t ~cpu ~is_write:true r

(* {1 Coherence protocol} *)

let publish t ~cpu _r =
  check_cpu t cpu "publish";
  t.epoch <- t.epoch + 1;
  t.publisher <- cpu;
  Array.blit t.vc.(cpu) 0 t.pub_vc 0 t.ncpus;
  count t "publishes"

let sync t ~cpu _r =
  check_cpu t cpu "sync";
  (* The invalidation reached this CPU: its cache is empty, its view of the
     configuration is current, and everything the publisher did
     happens-before whatever this CPU does next. *)
  join t.vc.(cpu) t.pub_vc;
  tick t cpu;
  Hashtbl.iter
    (fun ((c, _) as k) _ -> if c = cpu then Hashtbl.remove t.shadow k)
    (Hashtbl.copy t.shadow);
  count t "syncs"

let note_store t ~cpu _r ~key =
  check_cpu t cpu "note_store";
  Hashtbl.replace t.shadow (cpu, key) t.epoch;
  count t "cache_stores"

let note_hit t ~cpu r ~key =
  check_cpu t cpu "note_hit";
  count t "cache_hits";
  match Hashtbl.find_opt t.shadow (cpu, key) with
  | Some e when e < t.epoch ->
    report t ~kind:Stale_cache_hit ~resource:r.name ~cpus:[ t.publisher; cpu ]
      ~missing:
        (Printf.sprintf "invalidation ipi %d->%d for epoch %d" t.publisher cpu
           t.epoch)
      ~detail:
        (Printf.sprintf
           "cpu %d served a cache hit from an entry stored under epoch %d \
            after the epoch-%d mutation on cpu %d"
           cpu e t.epoch t.publisher)
  | Some _ | None -> ()

(* {1 Static lint} *)

let declare_lock t name =
  if not (List.mem name t.declared_locks) then
    t.declared_locks <- name :: t.declared_locks

let declare_lock_order t ~before ~after =
  declare_lock t before;
  declare_lock t after;
  t.lock_order <- (before, after) :: t.lock_order

let declare_site t ~site ~ctx ~locks ~rw r =
  t.sites <- { site; sctx = ctx; slocks = locks; srw = rw; sresource = r } :: t.sites

module Lint = struct
  type finding = {
    kind : [ `Undeclared_sharing | `Inconsistent_guard | `Lock_order_inversion ];
    subject : string;
    detail : string;
  }

  let kind_name f =
    match f.kind with
    | `Undeclared_sharing -> "undeclared-sharing"
    | `Inconsistent_guard -> "inconsistent-guard"
    | `Lock_order_inversion -> "lock-order-inversion"

  let pp_finding ppf f =
    Format.fprintf ppf "LINT %s: %s: %s" (kind_name f) f.subject f.detail

  let ctx_name = function
    | Boot -> "boot cpu"
    | On_cpu k -> Printf.sprintf "cpu %d" k
    | Any_cpu -> "any cpu"

  (* A site's context can reach the given CPU. *)
  let ctx_reaches ctx k =
    match ctx with Boot -> k = 0 | On_cpu c -> c = k | Any_cpu -> true

  let run t =
    let findings = ref [] in
    let add kind subject detail = findings := { kind; subject; detail } :: !findings in
    let sites = List.rev t.sites in
    let sites_of r = List.filter (fun s -> s.sresource.id = r.id) sites in
    List.iter
      (fun r ->
        let rs = sites_of r in
        (match r.discipline with
        | Cpu_private owner ->
          (* Undeclared sharing: a site that can run away from the owner
             touches a CPU-private resource. *)
          List.iter
            (fun s ->
              let foreign =
                match s.sctx with
                | On_cpu c -> c <> owner
                | Boot -> owner <> 0
                | Any_cpu -> t.ncpus > 1
              in
              if foreign then
                add `Undeclared_sharing r.name
                  (Printf.sprintf
                     "site %s (%s) can touch a resource declared private to \
                      cpu %d"
                     s.site (ctx_name s.sctx) owner))
            rs
        | Guarded_by guard ->
          (* Inconsistent guard: the resource can actually be shared (more
             than one CPU reaches some site) yet a site omits the declared
             guard. On a 1-CPU complex the guard is vacuous. *)
          let cpus = List.init t.ncpus Fun.id in
          let reachers =
            List.concat_map
              (fun s -> List.filter (ctx_reaches s.sctx) cpus)
              rs
            |> List.sort_uniq compare
          in
          if List.length reachers > 1 then
            List.iter
              (fun s ->
                if not (List.mem guard s.slocks) then
                  add `Inconsistent_guard r.name
                    (Printf.sprintf
                       "site %s (%s, %s) does not hold the declared guard %s%s"
                       s.site (ctx_name s.sctx)
                       (match s.srw with `Read -> "read" | `Write -> "write")
                       guard
                       (match s.slocks with
                       | [] -> " (no locks held)"
                       | ls -> " (holds " ^ String.concat "," ls ^ ")")))
              rs
        | Ipi_published ->
          (* Two sites each pinned to a different CPU both writing an
             ipi-published resource means two competing publishers — the
             protocol assumes mutations are serialized. (Boot/Any_cpu
             writer contexts are the normal configuration path and are
             checked dynamically instead.) *)
          let pinned_writers =
            List.filter_map
              (fun s ->
                match (s.srw, s.sctx) with
                | `Write, On_cpu c -> Some c
                | _ -> None)
              rs
            |> List.sort_uniq compare
          in
          if List.length pinned_writers > 1 then
            add `Inconsistent_guard r.name
              (Printf.sprintf
                 "%d distinct pinned publisher CPUs on an ipi-published \
                  resource (single-publisher protocol)"
                 (List.length pinned_writers))))
      (List.rev t.resources);
    (* Lock-order inversions: edges from declared order plus every
       consecutive pair in a site's acquisition list; any cycle is a
       potential inversion. *)
    let edges = ref (List.rev t.lock_order) in
    List.iter
      (fun s ->
        let rec pairs = function
          | a :: (b :: _ as rest) ->
            if not (List.mem (a, b) !edges) then edges := (a, b) :: !edges;
            pairs rest
          | _ -> []
        in
        ignore (pairs s.slocks : (string * string) list))
      sites;
    let edges = !edges in
    let nodes =
      List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
    in
    let rec reachable seen from target =
      List.exists
        (fun (a, b) ->
          a = from
          && (b = target || ((not (List.mem b seen)) && reachable (b :: seen) b target)))
        edges
    in
    List.iter
      (fun n ->
        if reachable [ n ] n n then
          let partners =
            List.filter (fun m -> m <> n && reachable [ n ] n m && reachable [ m ] m n) nodes
          in
          (* report each cycle once, from its least-named member *)
          if List.for_all (fun m -> n <= m) partners then
            add `Lock_order_inversion
              (String.concat " -> " (n :: partners @ [ n ]))
              "lock acquisition order forms a cycle: two paths can deadlock")
      nodes;
    List.rev !findings
end
