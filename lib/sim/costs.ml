type t = {
  context_switch : Time.t;
  syscall : Time.t;
  copy_base : Time.t;
  copy_per_kbyte : Time.t;
  filter_insn : Time.t;
  filter_apply : Time.t;
  recv_interrupt : Time.t;
  send_path : Time.t;
  send_per_kbyte : Time.t;
  proto_user_per_packet : Time.t;
  proto_kernel_per_packet : Time.t;
  ip_overhead : Time.t;
  checksum_per_kbyte : Time.t;
  pipe_transfer : Time.t;
  timestamp : Time.t;
  wakeup : Time.t;
  cache_probe : Time.t;
  cache_hash_word : Time.t;
  dispatch_probe : Time.t;
  dispatch_hash_word : Time.t;
  regvm_apply : Time.t;
  regvm_insn : Time.t;
  lock_acquire : Time.t;
  ipi_send : Time.t;
  ipi_receive : Time.t;
  ipi_latency : Time.t;
  san_access : Time.t;
}

let microvax_ii =
  {
    context_switch = 400;
    syscall = 250;
    copy_base = 500;
    copy_per_kbyte = 1000;
    filter_insn = 29;
    filter_apply = 35;
    recv_interrupt = 900;
    send_path = 1000;
    send_per_kbyte = 250;
    proto_user_per_packet = 700;
    proto_kernel_per_packet = 350;
    ip_overhead = 450;
    checksum_per_kbyte = 1100;
    pipe_transfer = 300;
    timestamp = 70;
    wakeup = 200;
    cache_probe = 20;
    cache_hash_word = 3;
    dispatch_probe = 20;
    dispatch_hash_word = 3;
    regvm_apply = 30;
    regvm_insn = 18;
    lock_acquire = 15;
    ipi_send = 60;
    ipi_receive = 150;
    ipi_latency = 20;
    san_access = 4;
  }

let scale f t =
  let s v = int_of_float (Float.round (f *. float_of_int v)) in
  {
    context_switch = s t.context_switch;
    syscall = s t.syscall;
    copy_base = s t.copy_base;
    copy_per_kbyte = s t.copy_per_kbyte;
    filter_insn = s t.filter_insn;
    filter_apply = s t.filter_apply;
    recv_interrupt = s t.recv_interrupt;
    send_path = s t.send_path;
    send_per_kbyte = s t.send_per_kbyte;
    proto_user_per_packet = s t.proto_user_per_packet;
    proto_kernel_per_packet = s t.proto_kernel_per_packet;
    ip_overhead = s t.ip_overhead;
    checksum_per_kbyte = s t.checksum_per_kbyte;
    pipe_transfer = s t.pipe_transfer;
    timestamp = s t.timestamp;
    wakeup = s t.wakeup;
    cache_probe = s t.cache_probe;
    cache_hash_word = s t.cache_hash_word;
    dispatch_probe = s t.dispatch_probe;
    dispatch_hash_word = s t.dispatch_hash_word;
    regvm_apply = s t.regvm_apply;
    regvm_insn = s t.regvm_insn;
    lock_acquire = s t.lock_acquire;
    ipi_send = s t.ipi_send;
    ipi_receive = s t.ipi_receive;
    ipi_latency = s t.ipi_latency;
    san_access = s t.san_access;
  }

let vax_780 = { microvax_ii with timestamp = 70 }
let free = scale 0. microvax_ii
let per_kbyte rate ~bytes = rate * bytes / 1024
let copy_cost t ~bytes = t.copy_base + per_kbyte t.copy_per_kbyte ~bytes
let checksum_cost t ~bytes = per_kbyte t.checksum_per_kbyte ~bytes
