(* An SMP complex: N serializing CPUs sharing one discrete-event engine,
   plus the two cross-CPU cost primitives multiprocessor kernels pay for —
   spinlocks and interprocessor interrupts.

   Determinism: the engine already orders same-time events by scheduling
   sequence number, so every cross-CPU interaction here (IPI broadcasts,
   per-CPU work retiring at the same instant) is made deterministic by
   always iterating CPUs in ascending id order when scheduling — the
   (time, cpu id, seq) order is then exactly the (time, seq) order the
   engine enforces. *)

type t = {
  engine : Engine.t;
  costs : Costs.t;
  cpus : Cpu.t array;
  ipis_sent : int array; (* per source CPU *)
  ipis_received : int array; (* per target CPU *)
  mutable san : San.t option; (* attached sanitizer, if any *)
}

let of_cpus engine costs cpus =
  if Array.length cpus = 0 then invalid_arg "Smp.of_cpus: no CPUs";
  {
    engine;
    costs;
    cpus;
    ipis_sent = Array.make (Array.length cpus) 0;
    ipis_received = Array.make (Array.length cpus) 0;
    san = None;
  }

let create ?(ncpus = 1) engine costs =
  if ncpus < 1 then invalid_arg "Smp.create: ncpus must be at least 1";
  of_cpus engine costs (Array.init ncpus (fun _ -> Cpu.create costs))

let ncpus t = Array.length t.cpus
let costs t = t.costs
let engine t = t.engine

let cpu t i =
  if i < 0 || i >= Array.length t.cpus then invalid_arg "Smp.cpu: no such CPU";
  t.cpus.(i)

let ipis_sent t i = t.ipis_sent.(i)
let ipis_received t i = t.ipis_received.(i)
let total_ipis t = Array.fold_left ( + ) 0 t.ipis_sent
let set_san t san = t.san <- Some san
let san t = t.san

(* Post an interprocessor interrupt: the sender pays [ipi_send] in its own
   (interrupt) context right now, the doorbell propagates for [ipi_latency],
   then the target CPU fields a [ipi_receive]-long interrupt and [k] runs
   when that work retires. An attached sanitizer sees the happens-before
   edge: the token snapshots the sender's clock now, the receiver joins it
   as its interrupt retires, just before [k]. *)
let ipi t ~src ~dst k =
  if src = dst then invalid_arg "Smp.ipi: src = dst";
  let send_done =
    Cpu.run t.cpus.(src) ~owner:`Interrupt ~start:(Engine.now t.engine)
      ~cost:t.costs.Costs.ipi_send
  in
  t.ipis_sent.(src) <- t.ipis_sent.(src) + 1;
  let token = Option.map (fun san -> San.ipi_send san ~src) t.san in
  Engine.schedule t.engine ~at:(send_done + t.costs.Costs.ipi_latency) (fun () ->
      let finish =
        Cpu.run t.cpus.(dst) ~owner:`Interrupt ~start:(Engine.now t.engine)
          ~cost:t.costs.Costs.ipi_receive
      in
      t.ipis_received.(dst) <- t.ipis_received.(dst) + 1;
      Engine.schedule t.engine ~at:finish (fun () ->
          (match (t.san, token) with
          | Some san, Some m -> San.ipi_receive san ~dst m
          | _ -> ());
          k ()))

(* Every CPU except [src], ascending id (the deterministic broadcast
   order); [k] runs once per target as its receive interrupt retires. *)
let ipi_broadcast t ~src k =
  Array.iteri (fun dst _ -> if dst <> src then ipi t ~src ~dst (fun () -> k dst)) t.cpus

module Lock = struct
  (* A costed spinlock. The simulation itself is single-threaded, so the
     lock never protects anything for real — it models the time a CPU
     spends spinning when another CPU holds the word, in virtual time:
     acquiring at [start] while the lock is held until [h] costs
     [h - start] of busy-wait plus the uncontended [lock_acquire] charge,
     and the lock is then held for [lock_acquire + hold]. Callers charge
     the returned wait (plus [lock_acquire] and their critical section) to
     their own CPU, which is exactly what a spinning processor burns. *)
  type misuse =
    | Reentrant_acquire of int
    | Double_release of int
    | Release_by_non_owner of { cpu : int; owner : int }

  type nonrec lock = {
    smp : t;
    name : string;
    mutable held_until : Time.t;
    mutable acquisitions : int;
    mutable contended : int;
    mutable wait_time : Time.t;
    mutable owner : int option; (* logical holder between acquire/release *)
    mutable misuses : misuse list; (* reverse detection order *)
  }

  let create ?(name = "lock") smp =
    {
      smp;
      name;
      held_until = 0;
      acquisitions = 0;
      contended = 0;
      wait_time = 0;
      owner = None;
      misuses = [];
    }

  let name l = l.name

  let misuse_name = function
    | Reentrant_acquire _ -> "reentrant-acquire"
    | Double_release _ -> "double-release"
    | Release_by_non_owner _ -> "release-by-non-owner"

  let pp_misuse ppf m =
    match m with
    | Reentrant_acquire cpu ->
      Format.fprintf ppf "reentrant acquire by cpu %d" cpu
    | Double_release cpu -> Format.fprintf ppf "double release by cpu %d" cpu
    | Release_by_non_owner { cpu; owner } ->
      Format.fprintf ppf "release by cpu %d of a lock owned by cpu %d" cpu owner

  let flag l ~cpu m =
    l.misuses <- m :: l.misuses;
    match l.smp.san with
    | Some san -> San.lock_misuse san ~cpu ~lock:l.name ~kind:(misuse_name m)
    | None -> ()

  (* Misuse detection and sanitizer edges are bookkeeping only: the time
     accounting below is byte-identical to the pre-hardening lock, so every
     pinned cost and counter is unchanged. *)
  let acquire ?(cpu = 0) l ~start ~hold =
    (match l.owner with
    | Some o when o = cpu -> flag l ~cpu (Reentrant_acquire cpu)
    | Some _ | None -> ());
    let granted = max start l.held_until in
    let wait = granted - start in
    if wait > 0 then begin
      l.contended <- l.contended + 1;
      l.wait_time <- l.wait_time + wait
    end;
    l.acquisitions <- l.acquisitions + 1;
    l.held_until <- granted + l.smp.costs.Costs.lock_acquire + hold;
    l.owner <- Some cpu;
    (match l.smp.san with
    | Some san -> San.lock_acquired san ~cpu l.name
    | None -> ());
    wait

  let release l ~cpu =
    (match l.owner with
    | None -> flag l ~cpu (Double_release cpu)
    | Some o when o <> cpu -> flag l ~cpu (Release_by_non_owner { cpu; owner = o })
    | Some _ -> ());
    l.owner <- None;
    match l.smp.san with
    | Some san -> San.lock_released san ~cpu l.name
    | None -> ()

  let acquisitions l = l.acquisitions
  let contended l = l.contended
  let wait_time l = l.wait_time
  let misuses l = List.rev l.misuses
end

type lock = Lock.lock
