(* The N-CPU simulated kernel: receive-side steering, per-CPU flow
   caches, the delivery lock, and cross-CPU invalidation. *)

open Pf_kernel
module Engine = Pf_sim.Engine
module Smp = Pf_sim.Smp
module Stats = Pf_sim.Stats
module Addr = Pf_net.Addr
module Frame = Pf_net.Frame
module Gen = Pf_monitor.Traffic.Gen

let set_filter_exn port program =
  match Pfdev.set_filter port program with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pfdev.pp_install_error e)

(* One host on a 10Mb segment with [ncpus] receive CPUs (via the RSS
   path; [None] is the legacy single-CPU host). *)
let mk_host ?ncpus () =
  let eng = Engine.create () in
  let link = Pf_net.Link.create eng Frame.Dix10 ~rate_mbit:10. () in
  let h =
    Host.create ~costs:Pf_sim.Costs.microvax_ii ?ncpus link ~name:"rx"
      ~addr:(Addr.eth_host 2)
  in
  (eng, h)

(* Install one port per generated flow (descending, as the benches do),
   drain the setup events, inject [k] drawn packets, run to completion. *)
let drive ?ncpus ~seed ~flows ~skew ~packets () =
  let eng, h = mk_host ?ncpus () in
  let pf = Host.pf h in
  let gen = Gen.make ~seed ~flows ~skew () in
  for i = flows - 1 downto 0 do
    let p = Pfdev.open_port pf in
    set_filter_exn p (Gen.filter (Gen.flow gen i));
    Pfdev.set_queue_limit p packets
  done;
  Engine.run eng;
  List.iter (fun f -> Host.inject h (Gen.frame f)) (Gen.sequence gen packets);
  Engine.run eng;
  (eng, h, pf)

(* {1 Determinism: same seed, byte-identical stats at 4 CPUs} *)

let test_determinism_4cpu () =
  let run () =
    let _, h, pf =
      drive ~ncpus:4 ~seed:0xD373 ~flows:24 ~skew:(Gen.Zipf 1.1) ~packets:600 ()
    in
    (Stats.pairs (Host.stats h), Pfdev.smp_stats pf)
  in
  let s1, smp1 = run () in
  let s2, smp2 = run () in
  Alcotest.(check (list (pair string int))) "device stats replay exactly" s1 s2;
  Alcotest.(check bool) "per-CPU stats replay exactly" true (smp1 = smp2);
  Alcotest.(check bool) "all four CPUs saw traffic" true
    (List.for_all
       (fun (c : Pfdev.smp_cpu_stats) -> c.Pfdev.packets > 0)
       smp1.Pfdev.per_cpu)

(* {1 Steering: same flow, same CPU} *)

let test_same_flow_same_cpu () =
  List.iter
    (fun seed ->
      let eng, h = mk_host ~ncpus:4 () in
      let pf = Host.pf h in
      let gen = Gen.make ~seed ~flows:32 ~skew:Gen.Uniform () in
      for i = 31 downto 0 do
        let p = Pfdev.open_port pf in
        set_filter_exn p (Gen.filter (Gen.flow gen i));
        Pfdev.set_queue_limit p 10_000
      done;
      Engine.run eng;
      (* Every packet of one flow must hash to that flow's CPU — steering
         is a pure function of the flow's key bytes. *)
      List.iter
        (fun f ->
          let cpu = Pfdev.steer pf (Gen.frame f) in
          Alcotest.(check bool) "cpu in range" true
            (cpu >= 0 && cpu < Pfdev.ncpus pf);
          for _ = 1 to 3 do
            Alcotest.(check int) "steering is stable" cpu
              (Pfdev.steer pf (Gen.frame f))
          done)
        (Gen.flows gen);
      (* And the end-to-end path must agree: inject a mix, then check every
         packet landed on the CPU the hash names. *)
      let counts = Array.make 4 0 in
      List.iter
        (fun f ->
          let cpu = Pfdev.steer pf (Gen.frame f) in
          counts.(cpu) <- counts.(cpu) + 1;
          Host.inject h (Gen.frame f))
        (Gen.sequence gen 400);
      Engine.run eng;
      let smp = Pfdev.smp_stats pf in
      List.iter
        (fun (c : Pfdev.smp_cpu_stats) ->
          Alcotest.(check int)
            (Printf.sprintf "cpu %d demuxed exactly its steered share" c.Pfdev.cpu)
            counts.(c.Pfdev.cpu) c.Pfdev.packets)
        smp.Pfdev.per_cpu)
    [ 0xF10; 0xF11; 0xF12 ]

(* {1 Mutation invalidates every per-CPU cache} *)

let test_mutations_invalidate_all_cpus () =
  let ncpus = 4 in
  let mutate_with name mutate =
    let eng, h = mk_host ~ncpus () in
    let pf = Host.pf h in
    let gen = Gen.make ~seed:0xCAFE ~flows:8 ~skew:Gen.Uniform () in
    let ports =
      List.map
        (fun f ->
          let p = Pfdev.open_port pf in
          set_filter_exn p (Gen.filter f);
          Pfdev.set_queue_limit p 10_000;
          p)
        (Gen.flows gen)
    in
    Engine.run eng;
    (* Warm every CPU's private cache. *)
    List.iter (fun f -> Host.inject h (Gen.frame f)) (Gen.sequence gen 200);
    Engine.run eng;
    let warm = Pfdev.cache_stats pf in
    Alcotest.(check bool) (name ^ ": caches warmed") true (warm.Pfdev.hits > 0);
    let inval0 = warm.Pfdev.invalidations in
    let ipis0 = Smp.total_ipis (Host.smp h) in
    mutate pf (List.hd ports) gen;
    Engine.run eng;
    let after = Pfdev.cache_stats pf in
    (* One device-level event flushes all [ncpus] private caches... *)
    Alcotest.(check int)
      (name ^ ": every per-CPU cache flushed")
      (inval0 + ncpus) after.Pfdev.invalidations;
    (* ...broadcast to the other CPUs as costed IPIs. *)
    Alcotest.(check int)
      (name ^ ": one IPI per remote CPU")
      (ipis0 + (ncpus - 1))
      (Smp.total_ipis (Host.smp h));
    (* No CPU answers from a stale entry afterwards: re-inject, recount. *)
    let misses0 = after.Pfdev.misses in
    List.iter (fun f -> Host.inject h (Gen.frame f)) (Gen.sequence gen 8);
    Engine.run eng;
    Alcotest.(check bool)
      (name ^ ": first packet after mutation misses")
      true
      ((Pfdev.cache_stats pf).Pfdev.misses > misses0)
  in
  mutate_with "set_filter" (fun _ p gen ->
      set_filter_exn p (Gen.filter ~priority:1 (Gen.flow gen 0)));
  mutate_with "install" (fun _ p gen ->
      match Pfdev.install p (Gen.filter (Gen.flow gen 0)) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Format.asprintf "%a" Pfdev.pp_install_error e));
  mutate_with "set_priority" (fun _ p _ -> Pfdev.set_priority p 9)

(* {1 1-CPU SMP parity with the legacy path} *)

let test_one_cpu_parity () =
  let run ncpus =
    let _, h, _ =
      drive ?ncpus ~seed:0x9A21 ~flows:16 ~skew:(Gen.Zipf 1.2) ~packets:500 ()
    in
    Stats.pairs (Host.stats h)
  in
  Alcotest.(check (list (pair string int)))
    "1-CPU SMP host reproduces the legacy host's counters exactly"
    (run None) (run (Some 1))

let test_no_smp_keys_on_one_cpu () =
  let _, h, _ =
    drive ~ncpus:1 ~seed:0x9A21 ~flows:16 ~skew:Gen.Uniform ~packets:300 ()
  in
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "no %s on a single-CPU device" k)
        false
        (String.length k >= 7 && String.sub k 0 7 = "pf.smp."))
    (Stats.pairs (Host.stats h))

(* {1 The delivery lock contends under simultaneous arrivals} *)

let test_delivery_lock_contention () =
  (* Two flows steered to different CPUs, their packets injected at the
     same instant over and over: both CPUs finish classification together
     and collide on the shared delivery lock. *)
  let eng, h = mk_host ~ncpus:2 () in
  let pf = Host.pf h in
  let gen = Gen.make ~seed:0x10CC ~flows:16 ~skew:Gen.Uniform () in
  List.iter
    (fun f ->
      let p = Pfdev.open_port pf in
      set_filter_exn p (Gen.filter f);
      Pfdev.set_queue_limit p 10_000)
    (Gen.flows gen);
  Engine.run eng;
  let on_cpu k =
    List.find (fun f -> Pfdev.steer pf (Gen.frame f) = k) (Gen.flows gen)
  in
  let f0 = on_cpu 0 and f1 = on_cpu 1 in
  (* Warm both private caches first so each round's classification costs
     the same on both CPUs — then paired arrivals finish classification at
     the same instant and collide on the lock every time. *)
  Host.inject h (Gen.frame f0);
  Host.inject h (Gen.frame f1);
  Engine.run eng;
  for _ = 1 to 50 do
    Host.inject h (Gen.frame f0);
    Host.inject h (Gen.frame f1);
    Engine.run eng
  done;
  let smp = Pfdev.smp_stats pf in
  Alcotest.(check int) "every delivery took the lock" 102
    smp.Pfdev.lock_acquisitions;
  Alcotest.(check bool) "simultaneous arrivals contended" true
    (smp.Pfdev.lock_contended >= 50);
  Alcotest.(check bool) "contended waits accumulated spin time" true
    (smp.Pfdev.lock_wait_total_us > 0)

(* {1 Per-CPU dispatch automata} *)

let test_per_cpu_dispatch () =
  let eng, h = mk_host ~ncpus:4 () in
  let pf = Host.pf h in
  Pfdev.set_strategy pf `Dispatch;
  let gen =
    Gen.make ~blend:[ (Gen.Pup, 1.) ] ~seed:0xD15 ~flows:64 ~skew:Gen.Uniform ()
  in
  List.iter
    (fun f ->
      let p = Pfdev.open_port pf in
      set_filter_exn p (Gen.filter f);
      Pfdev.set_queue_limit p 10_000)
    (Gen.flows gen);
  Engine.run eng;
  Pfdev.set_cache_enabled pf false;
  let accepted = ref 0 in
  let seq = Gen.sequence gen 800 in
  List.iter (fun f -> Host.inject h (Gen.frame f)) seq;
  Engine.run eng;
  accepted := Stats.get (Host.stats h) "pf.accepted";
  Alcotest.(check int) "automaton classifies correctly on every CPU" 800 !accepted;
  let ds = Pfdev.dispatch_stats pf in
  Alcotest.(check int) "automaton classified every packet" 800
    ds.Pfdev.classifies;
  (* One lazy rebuild per CPU: each CPU owns a private automaton instance
     and compiles it on its own first packet. *)
  Alcotest.(check int) "one automaton rebuild per CPU" (Pfdev.ncpus pf)
    ds.Pfdev.rebuilds

(* {1 The generator's filters match exactly their own flows} *)

let test_gen_filters_exact () =
  let gen =
    Gen.make ~seed:0x6E6 ~flows:24 ~skew:Gen.Uniform ()
  in
  List.iter
    (fun f ->
      match Pf_filter.Validate.check (Gen.filter f) with
      | Error e ->
        Alcotest.failf "flow %d (%s): invalid filter: %a" f.Gen.index
          (Gen.proto_name f.Gen.proto) Pf_filter.Validate.pp_error e
      | Ok v ->
        List.iter
          (fun g ->
            let payload =
              match Frame.decode Frame.Dix10 (Gen.frame g) with
              | Some (_, p) -> p
              | None -> Alcotest.failf "flow %d: undecodable frame" g.Gen.index
            in
            ignore payload;
            Alcotest.(check bool)
              (Printf.sprintf "filter %d vs frame %d" f.Gen.index g.Gen.index)
              (f.Gen.index = g.Gen.index)
              (Pf_filter.Interp.accepts (Pf_filter.Validate.program v)
                 (Gen.frame g)))
          (Gen.flows gen))
    (Gen.flows gen)

let suite =
  ( "smp",
    [
      Alcotest.test_case "4-CPU run replays byte-identical" `Quick
        test_determinism_4cpu;
      Alcotest.test_case "same flow always steers to the same CPU" `Quick
        test_same_flow_same_cpu;
      Alcotest.test_case "mutations invalidate every per-CPU cache (+IPIs)" `Quick
        test_mutations_invalidate_all_cpus;
      Alcotest.test_case "1-CPU SMP matches the legacy path exactly" `Quick
        test_one_cpu_parity;
      Alcotest.test_case "no pf.smp.* keys on a single CPU" `Quick
        test_no_smp_keys_on_one_cpu;
      Alcotest.test_case "delivery lock contends under simultaneous arrivals"
        `Quick test_delivery_lock_contention;
      Alcotest.test_case "dispatch automaton instances are per-CPU" `Quick
        test_per_cpu_dispatch;
      Alcotest.test_case "generator filters accept exactly their own flow" `Quick
        test_gen_filters_exact;
    ] )
