(* Tests for the post-1987 extensions and baselines: the peephole optimizer,
   the NIT-style single-field matcher, decision-tree demultiplexing inside
   the pseudodevice, the Pup echo protocol, and VMTP loss recovery. *)

open Pf_filter
module Packet = Pf_pkt.Packet
module Engine = Pf_sim.Engine
module Host = Pf_kernel.Host
module Pfdev = Pf_kernel.Pfdev
module Addr = Pf_net.Addr
module Frame = Pf_net.Frame

(* {1 Peephole optimizer} *)

let test_peephole_nops () =
  let p =
    Program.v
      [ Insn.make Action.Nopush; Insn.make (Action.Pushword 1);
        Insn.make Action.Nopush; Insn.make ~op:Op.Eq (Action.Pushlit 2);
        Insn.make Action.Nopush ]
  in
  let optimized, report = Peephole.optimize_with_report p in
  Alcotest.(check int) "nops removed" 2 (Program.insn_count optimized);
  Alcotest.(check int) "before" 5 report.Peephole.insns_before;
  Alcotest.(check int) "after" 2 report.Peephole.insns_after

let test_peephole_strength_reduction () =
  let p = Program.v [ Insn.make (Action.Pushlit 0xffff); Insn.make ~op:Op.And (Action.Pushlit 0x00ff) ] in
  let optimized = Peephole.optimize p in
  (* 0xffff land 0x00ff = 0x00ff: the whole thing folds to one PUSH00FF. *)
  Alcotest.(check int) "folds to one insn" 1 (Program.insn_count optimized);
  Alcotest.(check int) "no literal words" 1 (Program.code_words optimized);
  Alcotest.(check (list int)) "result is push00ff"
    (Insn.encode (Insn.make Action.Push00ff))
    (List.concat_map Insn.encode (Program.insns optimized))

let test_peephole_constant_folding_chain () =
  (* (3 + 4) * 2 == 14 -> constant TRUE, one push. *)
  let p =
    Program.v
      [ Insn.make (Action.Pushlit 3); Insn.make ~op:Op.Add (Action.Pushlit 4);
        Insn.make ~op:Op.Mul (Action.Pushlit 2); Insn.make ~op:Op.Eq (Action.Pushlit 14) ]
  in
  let optimized = Peephole.optimize p in
  Alcotest.(check int) "whole chain folds" 1 (Program.insn_count optimized);
  Alcotest.(check bool) "still accepts" true (Interp.accepts optimized (Packet.of_string ""))

let test_peephole_truncates_dead_code () =
  (* pushone, pushone, COR always terminates TRUE: the tail is dead. *)
  let p =
    Program.v
      [ Insn.make Action.Pushone; Insn.make ~op:Op.Cor Action.Pushone;
        Insn.make (Action.Pushword 100); Insn.make ~op:Op.Eq (Action.Pushlit 9) ]
  in
  let optimized = Peephole.optimize p in
  Alcotest.(check bool) "tail removed" true (Program.insn_count optimized <= 2);
  (* Verdict preserved even on a packet where the dead pushword+100 would
     have faulted. *)
  Alcotest.(check bool) "same verdict on short packet"
    (Interp.accepts p (Packet.of_string "ab"))
    (Interp.accepts optimized (Packet.of_string "ab"))

let test_peephole_keeps_dynamic_code () =
  let p = Predicates.fig_3_9 in
  let optimized = Peephole.optimize p in
  Alcotest.(check bool) "nothing to optimize in fig 3-9" true (Program.equal p optimized)

let test_peephole_invalid_program_untouched () =
  let p = Program.v [ Insn.make ~op:Op.And Action.Nopush ] in
  Alcotest.(check bool) "underflowing program returned as-is" true
    (Program.equal p (Peephole.optimize p))

let prop_peephole_preserves_verdict =
  QCheck.Test.make ~name:"peephole preserves the checked verdict" ~count:1000
    Testutil.arb_program_packet
    (fun (insns, packet) ->
      let p = Program.v insns in
      let optimized = Peephole.optimize p in
      Interp.accepts p packet = Interp.accepts optimized packet)

let prop_peephole_never_grows =
  QCheck.Test.make ~name:"peephole never grows the encoding" ~count:500
    Testutil.arb_program_packet
    (fun (insns, _) ->
      let p = Program.v insns in
      Program.code_words (Peephole.optimize p) <= Program.code_words p)

let prop_decode_never_raises =
  QCheck.Test.make ~name:"Program.decode total on arbitrary words" ~count:500
    QCheck.(list (int_bound 0xffff))
    (fun words ->
      match Program.decode words with Ok _ | Error _ -> true)

(* {1 NIT-style single-field matching} *)

let test_fieldmatch_basics () =
  let f = Fieldmatch.v ~offset:1 2 in
  Alcotest.(check bool) "matches pup type" true
    (Fieldmatch.matches f (Testutil.pup_frame ()));
  Alcotest.(check bool) "rejects others" false
    (Fieldmatch.matches f (Testutil.pup_frame ~etype:9 ()));
  Alcotest.(check bool) "short packet rejected" false
    (Fieldmatch.matches f (Packet.of_string "x"));
  (* The packet filter subsumes it. *)
  let program = Fieldmatch.to_program f in
  List.iter
    (fun pkt ->
      Alcotest.(check bool) "program = matcher" (Fieldmatch.matches f pkt)
        (Interp.accepts program pkt))
    [ Testutil.pup_frame (); Testutil.pup_frame ~etype:9 (); Packet.of_string "x" ]

let test_fieldmatch_masked () =
  let f = Fieldmatch.v ~offset:3 ~mask:0x00ff 16 in
  Alcotest.(check bool) "masked match" true
    (Fieldmatch.matches f (Testutil.pup_frame ~ptype:16 ()));
  Alcotest.(check bool) "mask ignores high byte" true
    (Fieldmatch.matches f
       (Packet.of_bytes
          (let b = Packet.to_bytes (Testutil.pup_frame ~ptype:16 ()) in
           Bytes.set_uint8 b 6 0xAA;
           b)))

let test_fieldmatch_expressible () =
  let open Dsl in
  (* One plain field: NIT can do it. *)
  (match Fieldmatch.expressible (word 1 =: lit 2) with
  | Some f -> Alcotest.(check int) "offset" 1 f.Fieldmatch.offset
  | None -> Alcotest.fail "single field should be expressible");
  (* One masked field. *)
  (match Fieldmatch.expressible (low_byte (word 3) =: lit 16) with
  | Some f ->
    Alcotest.(check int) "mask" 0x00ff f.Fieldmatch.mask;
    Alcotest.(check int) "value" 16 f.Fieldmatch.value
  | None -> Alcotest.fail "masked field should be expressible");
  (* Figure 3-9 needs three fields: NIT cannot express it — the paper's
     point about single-field kernel demultiplexers. *)
  Alcotest.(check bool) "fig 3-9 not expressible" true
    (Fieldmatch.expressible
       (word 8 =: lit 35 &&: (word 7 =: lit 0) &&: (word 1 =: lit 2))
    = None);
  Alcotest.(check bool) "inequality not expressible" true
    (Fieldmatch.expressible (word 1 >: lit 2) = None)

let test_fieldmatch_false_positives () =
  (* NIT matching only the socket word accepts a non-Pup packet whose bytes
     happen to coincide — the CSPF filter does not. *)
  let nit = Fieldmatch.v ~offset:8 35 in
  let cspf = Predicates.pup_dst_socket 35l in
  let pup = Testutil.pup_frame ~dst_socket:35l () in
  let impostor =
    (* ethertype 0x0800 (not Pup), but word 8 = 35 *)
    Packet.of_words [ 0x0102; 0x0800; 0; 0; 0; 0; 0; 0; 35; 0; 0; 0 ]
  in
  Alcotest.(check bool) "both accept the real Pup" true
    (Fieldmatch.matches nit pup && Interp.accepts cspf pup);
  Alcotest.(check bool) "NIT accepts the impostor" true (Fieldmatch.matches nit impostor);
  Alcotest.(check bool) "CSPF rejects the impostor" false (Interp.accepts cspf impostor)

(* {1 Decision-tree demultiplexing in the pseudodevice} *)

let mk_world () =
  let eng = Engine.create () in
  let link = Pf_net.Link.create eng Frame.Exp3 ~rate_mbit:3. () in
  let a = Host.create ~costs:Pf_sim.Costs.free link ~name:"a" ~addr:(Addr.exp 1) in
  let b = Host.create ~costs:Pf_sim.Costs.free link ~name:"b" ~addr:(Addr.exp 2) in
  (eng, a, b)

let test_pfdev_decision_tree_equivalent () =
  (* Same traffic, sequential vs decision-tree demux: identical delivery,
     fewer instructions interpreted. *)
  let run strategy =
    let eng, alice, bob = mk_world () in
    Pfdev.set_strategy (Host.pf bob) strategy;
    let counts = Array.make 10 0 in
    let ports =
      Array.init 10 (fun i ->
          let port = Pfdev.open_port (Host.pf bob) in
          (match
             Pfdev.set_filter port
               (Predicates.pup_dst_socket ~priority:(i mod 3) (Int32.of_int (30 + i)))
           with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "set_filter");
          Pfdev.set_timeout port (Some 200_000);
          ignore
            (Host.spawn bob ~name:(Printf.sprintf "r%d" i) (fun () ->
                 while Pfdev.read port <> None do
                   counts.(i) <- counts.(i) + 1
                 done));
          port)
    in
    ignore ports;
    let tx = Pfdev.open_port (Host.pf alice) in
    ignore
      (Host.spawn alice ~name:"writer" (fun () ->
           for k = 0 to 39 do
             Pfdev.write tx
               (Testutil.pup_frame ~dst_byte:2 ~dst_socket:(Int32.of_int (28 + (k mod 14))) ())
           done));
    Engine.run eng;
    (Array.to_list counts, Pf_sim.Stats.get (Host.stats bob) "pf.filter_insns")
  in
  let seq_counts, seq_insns = run `Sequential in
  let tree_counts, tree_insns = run `Decision_tree in
  Alcotest.(check (list int)) "identical delivery" seq_counts tree_counts;
  Alcotest.(check bool)
    (Printf.sprintf "tree interprets less (%d < %d)" tree_insns seq_insns)
    true (tree_insns < seq_insns)

let test_pfdev_decision_tree_falls_back_with_tap () =
  (* A copy-all monitor port forces the sequential path; deliveries must
     still be correct (monitor + owner both get the packet). *)
  let eng, alice, bob = mk_world () in
  Pfdev.set_strategy (Host.pf bob) `Decision_tree;
  let mon = Pfdev.open_port (Host.pf bob) in
  (match Pfdev.set_filter mon (Program.with_priority Predicates.accept_all 100) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "set_filter");
  Pfdev.set_copy_all mon true;
  let app = Pfdev.open_port (Host.pf bob) in
  (match Pfdev.set_filter app (Predicates.pup_dst_socket 35l) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "set_filter");
  let mon_got = ref 0 and app_got = ref 0 in
  Pfdev.set_timeout mon (Some 100_000);
  Pfdev.set_timeout app (Some 100_000);
  ignore
    (Host.spawn bob ~name:"mon" (fun () ->
         while Pfdev.read mon <> None do
           incr mon_got
         done));
  ignore
    (Host.spawn bob ~name:"app" (fun () ->
         while Pfdev.read app <> None do
           incr app_got
         done));
  let tx = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write tx (Testutil.pup_frame ~dst_byte:2 ~dst_socket:35l ())));
  Engine.run eng;
  Alcotest.(check int) "monitor saw it" 1 !mon_got;
  Alcotest.(check int) "app got it too" 1 !app_got

(* {1 Pup echo} *)

let test_pup_echo_ping () =
  let eng, a, b = mk_world () in
  let server = Pf_proto.Pup_echo.server b in
  let result = ref None in
  ignore
    (Host.spawn a ~name:"ping" (fun () ->
         result := Some (Pf_proto.Pup_echo.ping a ~dst_host:2 ~count:4 ~size:100)));
  Engine.run eng;
  (match !result with
  | Some r ->
    Alcotest.(check int) "all answered" 4 r.Pf_proto.Pup_echo.answered;
    Alcotest.(check int) "four rtts" 4 (List.length r.Pf_proto.Pup_echo.rtts);
    List.iter
      (fun rtt -> Alcotest.(check bool) "positive rtt" true (rtt > 0))
      r.Pf_proto.Pup_echo.rtts
  | None -> Alcotest.fail "ping did not run");
  Alcotest.(check int) "server counted them" 4 (Pf_proto.Pup_echo.echoed server);
  Pf_proto.Pup_echo.stop server;
  Engine.run eng

let test_pup_echo_no_server () =
  let eng, a, _b = mk_world () in
  let result = ref None in
  ignore
    (Host.spawn a ~name:"ping" (fun () ->
         result := Some (Pf_proto.Pup_echo.ping a ~dst_host:2 ~count:2 ~timeout:10_000)));
  Engine.run eng;
  match !result with
  | Some r -> Alcotest.(check int) "nothing answered" 0 r.Pf_proto.Pup_echo.answered
  | None -> Alcotest.fail "ping did not run"

(* {1 VMTP selective retransmission} *)

let test_vmtp_recovers_from_drops () =
  (* Realistic costs + the era queue limit: the 16KB response bursts
     overflow the client's port, and the transaction must still complete,
     via the needed-parts mask. *)
  let eng = Engine.create () in
  let link = Pf_net.Link.create eng Frame.Dix10 ~rate_mbit:10. () in
  let a = Host.create link ~name:"a" ~addr:(Addr.eth_host 1) in
  let b = Host.create link ~name:"b" ~addr:(Addr.eth_host 2) in
  (* The demux flow cache makes the client's interrupt path cheap enough
     that the burst no longer overflows; this test is about recovery from
     drops, so run the uncached (paper-era) demultiplexer. *)
  Pfdev.set_cache_enabled (Host.pf a) false;
  Pfdev.set_cache_enabled (Host.pf b) false;
  let impl = Pf_proto.Vmtp.User { batch = false } in
  let server =
    Pf_proto.Vmtp.server b impl ~entity:1l
      ~handler:(fun _ -> Packet.of_string (String.make Pf_proto.Vmtp.max_response 'z'))
  in
  let got = ref None in
  ignore
    (Host.spawn a ~name:"caller" (fun () ->
         got :=
           Pf_proto.Vmtp.call
             (Pf_proto.Vmtp.client a impl ~entity:2l)
             ~server:1l ~server_addr:(Host.addr b) (Packet.of_string "want it all");
         Pf_proto.Vmtp.stop_server server));
  Engine.run ~until:30_000_000 eng;
  (match !got with
  | Some response ->
    Alcotest.(check int) "full 16KB recovered" Pf_proto.Vmtp.max_response
      (Packet.length response);
    Alcotest.(check char) "content intact" 'z' (Char.chr (Packet.byte response 0))
  | None -> Alcotest.fail "transaction failed");
  (* The point of the test: packets were really dropped on the way. *)
  Alcotest.(check bool) "drops happened" true
    (Pf_sim.Stats.get (Host.stats a) "pf.drop.overflow" > 0)

(* {1 Write batching (§7)} *)

let test_write_batch_single_syscall () =
  let eng, alice, bob = mk_world () in
  let rx = Pfdev.open_port (Host.pf bob) in
  (match Pfdev.set_filter rx Predicates.accept_all with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "set_filter");
  let tx = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write_batch tx
           (List.init 6 (fun _ -> Testutil.pup_frame ~dst_byte:2 ()))));
  Engine.run eng;
  Alcotest.(check int) "one syscall for six packets" 1
    (Pf_sim.Stats.get (Host.stats alice) "pf.syscalls");
  Alcotest.(check int) "all delivered" 6 (Pfdev.poll rx)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "peephole removes nops" `Quick test_peephole_nops;
      Alcotest.test_case "peephole strength reduction" `Quick test_peephole_strength_reduction;
      Alcotest.test_case "peephole folds constants" `Quick test_peephole_constant_folding_chain;
      Alcotest.test_case "peephole truncates dead code" `Quick test_peephole_truncates_dead_code;
      Alcotest.test_case "peephole keeps dynamic code" `Quick test_peephole_keeps_dynamic_code;
      Alcotest.test_case "peephole skips invalid programs" `Quick
        test_peephole_invalid_program_untouched;
      QCheck_alcotest.to_alcotest prop_peephole_preserves_verdict;
      QCheck_alcotest.to_alcotest prop_peephole_never_grows;
      QCheck_alcotest.to_alcotest prop_decode_never_raises;
      Alcotest.test_case "fieldmatch basics" `Quick test_fieldmatch_basics;
      Alcotest.test_case "fieldmatch masked" `Quick test_fieldmatch_masked;
      Alcotest.test_case "fieldmatch expressibility" `Quick test_fieldmatch_expressible;
      Alcotest.test_case "NIT false positives vs CSPF" `Quick test_fieldmatch_false_positives;
      Alcotest.test_case "pfdev decision tree = sequential" `Quick
        test_pfdev_decision_tree_equivalent;
      Alcotest.test_case "pfdev tree falls back for copy-all" `Quick
        test_pfdev_decision_tree_falls_back_with_tap;
      Alcotest.test_case "pup echo ping" `Quick test_pup_echo_ping;
      Alcotest.test_case "pup echo no server" `Quick test_pup_echo_no_server;
      Alcotest.test_case "vmtp recovers from drops" `Quick test_vmtp_recovers_from_drops;
      Alcotest.test_case "write batch" `Quick test_write_batch_single_syscall;
    ] )
