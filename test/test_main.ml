let () =
  Alcotest.run "packet_filter"
    [
      Test_packet.suite;
      Test_filter.suite;
      Test_expr.suite;
      Test_sim.suite;
      Test_net.suite;
      Test_kernel.suite;
      Test_proto.suite;
      Test_monitor.suite;
      Test_extensions.suite;
      Test_trace.suite;
      Test_proto2.suite;
      Test_parse.suite;
      Test_internet.suite;
      Test_determinism.suite;
      Test_loss.suite;
      Test_semantics.suite;
      Test_misc.suite;
      Test_differential.suite;
      Test_analysis.suite;
      Test_ir.suite;
      Test_symex.suite;
      Test_dispatch.suite;
      Test_firewall.suite;
      Test_smp.suite;
    ]
