(* The differential fuzzing subsystem, exercised as part of `dune runtest`:
   a fixed-seed smoke campaign over every engine, plus a proof that the
   oracle actually catches and shrinks a seeded semantic mutant. Longer
   campaigns run out-of-band: `pffuzz --seed N --iters M`. *)

open Pf_filter
module Packet = Pf_pkt.Packet
module Gen = Pf_fuzz.Gen
module Oracle = Pf_fuzz.Oracle
module Shrink = Pf_fuzz.Shrink
module Runner = Pf_fuzz.Runner

let smoke_seed = 0xD1FF
let smoke_iters = 10_000

(* {1 The fixed-seed smoke campaign} *)

let test_smoke_campaign () =
  let stats = Runner.run ~seed:smoke_seed ~iters:smoke_iters () in
  (match stats.Runner.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "differential campaign found a disagreement:@.%a" Runner.pp_failure f);
  Alcotest.(check int) "all cases executed" smoke_iters stats.Runner.cases;
  (* The campaign must actually cover both sides of every boundary it
     respects, or "zero disagreements" would be vacuous. *)
  Alcotest.(check bool) "some accepts" true (stats.Runner.accepted > 0);
  Alcotest.(check bool) "some rejects" true (stats.Runner.accepted < stats.Runner.valid);
  Alcotest.(check bool) "some malformed programs" true (stats.Runner.malformed > 0);
  Alcotest.(check bool) "validator exercised" true (stats.Runner.validator_rejected > 0);
  Alcotest.(check bool) "`Bsd boundary exercised" true (stats.Runner.bsd_divergent > 0)

let test_case_determinism () =
  (* A case is a pure function of (seed, index): the foundation of the
     one-line reproduction workflow. *)
  List.iter
    (fun index ->
      let a = Gen.case ~seed:smoke_seed ~index in
      let b = Gen.case ~seed:smoke_seed ~index in
      Alcotest.(check bool) "same program" true (Program.equal a.Gen.program b.Gen.program);
      Alcotest.(check bool) "same packet" true (Packet.equal a.Gen.packet b.Gen.packet))
    [ 0; 1; 17; 4095; 9999 ]

let test_malformed_all_rejected () =
  (* Every generator-malformed program must be rejected by the validator —
     and across enough cases, all four error constructors must appear. *)
  let rng = Gen.Rng.make 0xBAD in
  let seen_long = ref false in
  let seen_underflow = ref false in
  let seen_overflow = ref false in
  let seen_unencodable = ref false in
  for _ = 1 to 400 do
    let pkt, _ = Gen.packet rng in
    match Validate.check (Gen.malformed rng pkt) with
    | Ok _ -> Alcotest.fail "malformed program passed validation"
    | Error (Validate.Program_too_long _) -> seen_long := true
    | Error (Validate.Static_underflow _) -> seen_underflow := true
    | Error (Validate.Static_overflow _) -> seen_overflow := true
    | Error (Validate.Word_offset_unencodable _) -> seen_unencodable := true
  done;
  Alcotest.(check bool) "saw Program_too_long" true !seen_long;
  Alcotest.(check bool) "saw Static_underflow" true !seen_underflow;
  Alcotest.(check bool) "saw Static_overflow" true !seen_overflow;
  Alcotest.(check bool) "saw Word_offset_unencodable" true !seen_unencodable

let test_valid_all_validate () =
  let rng = Gen.Rng.make 0x600D in
  for _ = 1 to 400 do
    let pkt, _ = Gen.packet rng in
    let p = Gen.program rng pkt in
    match Validate.check p with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "generator emitted an invalid program (%a):@.%a" Validate.pp_error e
        Program.pp p
  done

(* {1 The seeded semantic mutant}

   A private copy of the fast interpreter with an off-by-one planted in its
   hottest path: [pushword+i] reads word [i+1]. The oracle must flag it, and
   the shrinker must reduce the evidence to a tiny reproducer. *)

let mutant_fast (v : Validate.t) packet =
  let insns = Array.of_list (Program.insns (Validate.program v)) in
  let words = Packet.word_count packet in
  let stack = Array.make Interp.stack_size 0 in
  let sp = ref 0 in
  let exception Done of bool in
  try
    Array.iter
      (fun (insn : Insn.t) ->
        (match insn.Insn.action with
        | Action.Nopush -> ()
        | Action.Pushlit v ->
          stack.(!sp) <- v;
          incr sp
        | Action.Pushzero ->
          stack.(!sp) <- 0;
          incr sp
        | Action.Pushone ->
          stack.(!sp) <- 1;
          incr sp
        | Action.Pushffff ->
          stack.(!sp) <- 0xffff;
          incr sp
        | Action.Pushff00 ->
          stack.(!sp) <- 0xff00;
          incr sp
        | Action.Push00ff ->
          stack.(!sp) <- 0x00ff;
          incr sp
        | Action.Pushword i ->
          let i = i + 1 (* the seeded bug *) in
          if i >= words then raise (Done false);
          stack.(!sp) <- Packet.word packet i;
          incr sp
        | Action.Pushind ->
          let index = stack.(!sp - 1) in
          if index >= words then raise (Done false);
          stack.(!sp - 1) <- Packet.word packet index);
        match insn.Insn.op with
        | Op.Nop -> ()
        | op -> (
          let t1 = stack.(!sp - 1) in
          let t2 = stack.(!sp - 2) in
          sp := !sp - 2;
          match Op.apply op ~t2 ~t1 with
          | Op.Push r ->
            stack.(!sp) <- r;
            incr sp
          | Op.Terminate accept -> raise (Done accept)
          | Op.Fault -> raise (Done false)))
      insns;
    !sp = 0 || stack.(!sp - 1) <> 0
  with Done accept -> accept

let test_mutant_caught_and_shrunk () =
  let extra = [ ("mutant-fast", mutant_fast) ] in
  let stats = Runner.run ~extra ~max_failures:1 ~seed:0xFA57 ~iters:2_000 () in
  match stats.Runner.failures with
  | [] -> Alcotest.fail "the oracle missed a seeded off-by-one in a Fast copy"
  | f :: _ ->
    Alcotest.(check bool) "mutant engine is the culprit" true
      (List.exists (fun (m : Oracle.mismatch) -> m.Oracle.engine = "mutant-fast") f.Runner.mismatches);
    (* The shrunk case must still disagree, still blame the mutant... *)
    Alcotest.(check bool) "shrunk case still disagrees" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "mutant-fast")
         f.Runner.shrunk_mismatches);
    (* ...and be small enough to eyeball. *)
    Alcotest.(check bool)
      (Format.asprintf "reproducer is <= 5 insns, got:@.%a" Program.pp f.Runner.shrunk_program)
      true
      (Program.insn_count f.Runner.shrunk_program <= 5);
    Alcotest.(check bool) "repro command present" true
      (Testutil.contains f.Runner.repro "pffuzz --seed")

(* {1 The seeded stale-cache mutant}

   The "forgot to invalidate" kernel bug: warm the demux flow cache with
   accept_all's decision, then swap the real filter in with the invalidation
   deliberately skipped (Pfdev.For_testing). The next demux answers from the
   stale entry — i.e. accepts everything — so the oracle must flag it on any
   packet the real filter rejects, and the shrinker must reduce the
   evidence. *)

let mutant_stale_cache (v : Validate.t) packet =
  let module Pfdev = Pf_kernel.Pfdev in
  let eng = Pf_sim.Engine.create () in
  let costs = Pf_sim.Costs.free in
  let dev =
    Pfdev.create eng (Pf_sim.Cpu.create costs) costs (Pf_sim.Stats.create ())
      ~variant:Pf_net.Frame.Exp3 ~address:(Pf_net.Addr.exp 1)
      ~send:(fun _ -> ())
  in
  let port = Pfdev.open_port dev in
  (match Pfdev.set_filter port Predicates.accept_all with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore (Pfdev.demux dev packet : bool);
  Pfdev.For_testing.skip_install_invalidation := true;
  let swapped = Pfdev.set_filter port (Validate.program v) in
  Pfdev.For_testing.skip_install_invalidation := false;
  (match swapped with Ok () -> () | Error _ -> assert false);
  Pfdev.demux dev packet

let test_stale_cache_mutant_caught_and_shrunk () =
  let extra = [ ("stale-cache", mutant_stale_cache) ] in
  let stats = Runner.run ~extra ~max_failures:1 ~seed:0x5CA1E ~iters:2_000 () in
  match stats.Runner.failures with
  | [] -> Alcotest.fail "the oracle missed a skipped flow-cache invalidation"
  | f :: _ ->
    Alcotest.(check bool) "stale cache is the culprit" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "stale-cache")
         f.Runner.mismatches);
    Alcotest.(check bool) "shrunk case still disagrees" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "stale-cache")
         f.Runner.shrunk_mismatches);
    Alcotest.(check bool)
      (Format.asprintf "reproducer is <= 5 insns, got:@.%a" Program.pp f.Runner.shrunk_program)
      true
      (Program.insn_count f.Runner.shrunk_program <= 5);
    Alcotest.(check bool) "repro command present" true
      (Testutil.contains f.Runner.repro "pffuzz --seed")

(* {1 The seeded stale-REMOTE-cache mutant}

   The SMP variant of the same kernel bug: on a 2-CPU device, a filter
   change invalidates the installing CPU's flow cache but "forgets" the
   invalidation IPI to the other CPU (Pfdev.For_testing.
   skip_remote_invalidation). CPU 1's private cache still holds
   accept_all's verdict under the old cache key, so the next packet
   demultiplexed on CPU 1 answers stale — the oracle must flag it on any
   packet the real filter rejects, and the shrinker must reduce the
   evidence. *)

let mutant_stale_remote_cache (v : Validate.t) packet =
  let module Pfdev = Pf_kernel.Pfdev in
  let eng = Pf_sim.Engine.create () in
  let costs = Pf_sim.Costs.free in
  let smp = Pf_sim.Smp.create ~ncpus:2 eng costs in
  let dev =
    Pfdev.create_smp eng smp costs (Pf_sim.Stats.create ())
      ~variant:Pf_net.Frame.Exp3 ~address:(Pf_net.Addr.exp 1)
      ~send:(fun _ -> ())
  in
  let port = Pfdev.open_port dev in
  (match Pfdev.set_filter port Predicates.accept_all with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore (Pfdev.demux dev ~cpu:1 packet : bool);
  (* The mutation happens "on CPU 0": its own cache is flushed, the
     cross-CPU invalidation broadcast is skipped. *)
  Pfdev.For_testing.skip_remote_invalidation := true;
  let swapped = Pfdev.set_filter port (Validate.program v) in
  Pfdev.For_testing.skip_remote_invalidation := false;
  (match swapped with Ok () -> () | Error _ -> assert false);
  Pfdev.demux dev ~cpu:1 packet

let test_stale_remote_cache_mutant_caught_and_shrunk () =
  let extra = [ ("stale-remote-cache", mutant_stale_remote_cache) ] in
  let stats = Runner.run ~extra ~max_failures:1 ~seed:0x5CA1E ~iters:2_000 () in
  match stats.Runner.failures with
  | [] -> Alcotest.fail "the oracle missed a skipped cross-CPU cache invalidation"
  | f :: _ ->
    Alcotest.(check bool) "stale remote cache is the culprit" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "stale-remote-cache")
         f.Runner.mismatches);
    Alcotest.(check bool) "shrunk case still disagrees" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "stale-remote-cache")
         f.Runner.shrunk_mismatches);
    Alcotest.(check bool)
      (Format.asprintf "reproducer is <= 5 insns, got:@.%a" Program.pp f.Runner.shrunk_program)
      true
      (Program.insn_count f.Runner.shrunk_program <= 5);
    Alcotest.(check bool) "repro command present" true
      (Testutil.contains f.Runner.repro "pffuzz --seed")

(* {1 The seeded unsound-superoptimizer mutant}

   The classic way a proof-gated search goes wrong: treating the prover's
   "Unknown" as good enough. Superopt.For_testing.unsound_accept_unknown
   commits candidates the checker could not prove, so the chain drifts away
   from the source semantics the moment a screened-but-inequivalent rewrite
   slips through; executing the "best" program then disagrees with the
   reference on some packet. The oracle must flag it, and the shrinker must
   reduce the evidence. *)

let mutant_superopt (v : Validate.t) packet =
  let seed =
    List.fold_left
      (fun h w -> ((h * 31) + w) land 0x3fffffff)
      17
      (Program.encode (Validate.program v))
  in
  Superopt.For_testing.unsound_accept_unknown := true;
  Fun.protect
    ~finally:(fun () -> Superopt.For_testing.unsound_accept_unknown := false)
    (fun () ->
      let outcome = Superopt.search ~budget:96 ~seed (fst (Regopt.optimize v)) in
      Ir.exec outcome.Superopt.best packet)

let test_unsound_superopt_mutant_caught_and_shrunk () =
  let extra = [ ("mutant-superopt", mutant_superopt) ] in
  let stats = Runner.run ~extra ~max_failures:1 ~seed:0x50B4D ~iters:2_000 () in
  match stats.Runner.failures with
  | [] -> Alcotest.fail "the oracle missed an accept-on-Unknown superoptimizer"
  | f :: _ ->
    Alcotest.(check bool) "unsound search is the culprit" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "mutant-superopt")
         f.Runner.mismatches);
    Alcotest.(check bool) "shrunk case still disagrees" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "mutant-superopt")
         f.Runner.shrunk_mismatches);
    Alcotest.(check bool)
      (Format.asprintf "reproducer is <= 5 insns, got:@.%a" Program.pp f.Runner.shrunk_program)
      true
      (Program.insn_count f.Runner.shrunk_program <= 5);
    Alcotest.(check bool) "repro command present" true
      (Testutil.contains f.Runner.repro "pffuzz --seed")

(* {1 Pinned regression: the out-of-range literal divergence}

   Found by construction while building the oracle: Interp masks every push
   to 16 bits, Fast and Closure push literals raw, so an out-of-range
   Pushlit (only constructible programmatically — the parser and codec both
   mask) made the checked and unchecked engines disagree. Insn.make now
   masks at construction; this pins every engine to the same verdict. *)

let test_literal_masking_regression () =
  let program =
    Program.v
      [ Insn.make (Action.Pushlit 0x1ffff) (* masks to 0xffff *);
        Insn.make ~op:Op.Eq (Action.Pushffff) ]
  in
  let pkt = Packet.of_string "" in
  (match Validate.check program with
  | Error e -> Alcotest.failf "unexpectedly invalid: %a" Validate.pp_error e
  | Ok v ->
    Alcotest.(check bool) "interp accepts" true (Interp.accepts program pkt);
    Alcotest.(check bool) "fast agrees" true (Fast.run (Fast.compile v) pkt);
    Alcotest.(check bool) "closure agrees" true (Closure.run (Closure.compile v) pkt));
  match Oracle.check program pkt with
  | Oracle.Agreement { accept = true; _ } -> ()
  | o -> Alcotest.failf "oracle: %a" Oracle.pp_outcome o

(* {1 Peephole report arithmetic over a generated corpus} *)

let test_peephole_report_corpus () =
  let rng = Gen.Rng.make 0x9EE9 in
  for _ = 1 to 500 do
    let pkt, _ = Gen.packet rng in
    let p = Gen.program rng pkt in
    let opt, r = Peephole.optimize_with_report p in
    Alcotest.(check int) "insns_before" (Program.insn_count p) r.Peephole.insns_before;
    Alcotest.(check int) "insns_after" (Program.insn_count opt) r.Peephole.insns_after;
    Alcotest.(check int) "words_before" (Program.code_words p) r.Peephole.words_before;
    Alcotest.(check int) "words_after" (Program.code_words opt) r.Peephole.words_after;
    Alcotest.(check bool) "never grows in words" true
      (r.Peephole.words_after <= r.Peephole.words_before);
    Alcotest.(check bool) "never grows in insns" true
      (r.Peephole.insns_after <= r.Peephole.insns_before)
  done

(* {1 The shrinker on a hand-made failure} *)

let test_shrinker_reduces () =
  (* "Failure" predicate: the program still contains a division and the
     packet still has at least 4 bytes. The minimizer should strip
     everything else away. *)
  let keep p pkt =
    Packet.length pkt >= 4
    && List.exists (fun (i : Insn.t) -> i.Insn.op = Op.Div) (Program.insns p)
  in
  let rng = Gen.Rng.make 0x51ED in
  let pkt, _ = Gen.packet rng in
  let pkt = Packet.concat [ pkt; Packet.of_words [ 1; 2; 3; 4 ] ] in
  let base = Gen.program rng pkt in
  let program =
    Program.v ~priority:77
      (Program.insns base
      @ [ Insn.make Action.Pushone; Insn.make ~op:Op.Div Action.Pushone ])
  in
  let shrunk_p, shrunk_pkt = Shrink.minimize ~keep program pkt in
  Alcotest.(check bool) "still failing" true (keep shrunk_p shrunk_pkt);
  Alcotest.(check bool) "program minimized" true (Program.insn_count shrunk_p <= 2);
  Alcotest.(check int) "packet minimized" 4 (Packet.length shrunk_pkt);
  Alcotest.(check int) "priority zeroed" 0 (Program.priority shrunk_p)

let suite =
  ( "differential",
    [
      Alcotest.test_case "fixed-seed 10k smoke campaign" `Quick test_smoke_campaign;
      Alcotest.test_case "cases are pure functions of (seed, index)" `Quick test_case_determinism;
      Alcotest.test_case "malformed generator hits all validator errors" `Quick
        test_malformed_all_rejected;
      Alcotest.test_case "valid generator always validates" `Quick test_valid_all_validate;
      Alcotest.test_case "seeded Fast mutant caught and shrunk" `Quick
        test_mutant_caught_and_shrunk;
      Alcotest.test_case "seeded stale-cache mutant caught and shrunk" `Quick
        test_stale_cache_mutant_caught_and_shrunk;
      Alcotest.test_case "seeded stale-remote-cache mutant caught and shrunk" `Quick
        test_stale_remote_cache_mutant_caught_and_shrunk;
      Alcotest.test_case "seeded unsound-superoptimizer mutant caught and shrunk" `Quick
        test_unsound_superopt_mutant_caught_and_shrunk;
      Alcotest.test_case "out-of-range literal regression" `Quick
        test_literal_masking_regression;
      Alcotest.test_case "peephole report arithmetic (corpus)" `Quick
        test_peephole_report_corpus;
      Alcotest.test_case "shrinker reduces to a minimal core" `Quick test_shrinker_reduces;
    ] )
