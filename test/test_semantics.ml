(* Table-driven semantics of the core language: every operator against
   known operand pairs (the figure 3-6 tables, literally), plus algebraic
   properties of the optimization layers. *)

open Pf_filter
module Packet = Pf_pkt.Packet

(* {1 Figure 3-6's operator tables, row by row} *)

(* Check the exact result word: run [push t2; push t1 | op; push expected
   | eq] on an empty packet — it accepts iff the operator produced exactly
   [expected]. *)
let check_value name op ~t2 ~t1 expected =
  let o =
    Interp.run
      (Program.v
         [ Insn.make (Action.Pushlit t2);
           Insn.make ~op (Action.Pushlit t1);
           Insn.make ~op:Op.Eq (Action.Pushlit expected);
         ])
      (Packet.of_string "")
  in
  Alcotest.(check bool) (name ^ " no error") true (o.Interp.error = None);
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d %s %d = %d" name t2 (Op.name op) t1 expected)
    true o.Interp.accept

let test_comparison_table () =
  (* R := TRUE if T2 <op> T1 — note the operand order from the paper. *)
  List.iter
    (fun (op, t2, t1, expected) -> check_value "cmp" op ~t2 ~t1 expected)
    [
      (Op.Eq, 5, 5, 1); (Op.Eq, 5, 6, 0);
      (Op.Neq, 5, 6, 1); (Op.Neq, 5, 5, 0);
      (Op.Lt, 4, 5, 1); (Op.Lt, 5, 5, 0); (Op.Lt, 6, 5, 0);
      (Op.Le, 5, 5, 1); (Op.Le, 4, 5, 1); (Op.Le, 6, 5, 0);
      (Op.Gt, 6, 5, 1); (Op.Gt, 5, 5, 0); (Op.Gt, 4, 5, 0);
      (Op.Ge, 5, 5, 1); (Op.Ge, 6, 5, 1); (Op.Ge, 4, 5, 0);
    ]

let test_bitwise_table () =
  List.iter
    (fun (op, t2, t1, expected) -> check_value "bits" op ~t2 ~t1 expected)
    [
      (Op.And, 0xff00, 0x0ff0, 0x0f00);
      (Op.And, 0xff00, 0x00ff, 0);
      (Op.Or, 0xf000, 0x000f, 0xf00f);
      (Op.Xor, 0xffff, 0x00ff, 0xff00);
      (Op.Xor, 0xaaaa, 0xaaaa, 0);
    ]

let test_arithmetic_table () =
  List.iter
    (fun (op, t2, t1, expected) -> check_value "arith" op ~t2 ~t1 expected)
    [
      (Op.Add, 7, 8, 15);
      (Op.Add, 0xffff, 1, 0) (* 16-bit wrap *);
      (Op.Sub, 8, 7, 1);
      (Op.Sub, 0, 1, 0xffff) (* wrap below zero *);
      (Op.Mul, 300, 300, 90000 land 0xffff);
      (Op.Div, 100, 7, 14);
      (Op.Mod, 100, 7, 2);
      (Op.Lsh, 1, 15, 0x8000);
      (Op.Lsh, 0xffff, 4, 0xfff0);
      (Op.Rsh, 0x8000, 15, 1);
    ]

let test_short_circuit_table () =
  (* The paper's table: COR/CNAND return TRUE, CAND/CNOR return FALSE;
     COR/CNOR fire on equality, CAND/CNAND on inequality. *)
  let outcome op ~t2 ~t1 =
    let o =
      Interp.run
        (Program.v
           [ Insn.make (Action.Pushlit t2);
             Insn.make ~op (Action.Pushlit t1);
             (* a poison pill: proves whether the program terminated early *)
             Insn.make Action.Pushzero ])
        (Packet.of_string "")
    in
    (o.Interp.accept, o.Interp.insns_executed)
  in
  Alcotest.(check (pair bool int)) "COR equal: exit TRUE" (true, 2)
    (outcome Op.Cor ~t2:5 ~t1:5);
  Alcotest.(check (pair bool int)) "COR unequal: continue" (false, 3)
    (outcome Op.Cor ~t2:5 ~t1:6);
  Alcotest.(check (pair bool int)) "CAND unequal: exit FALSE" (false, 2)
    (outcome Op.Cand ~t2:5 ~t1:6);
  Alcotest.(check (pair bool int)) "CAND equal: continue" (false, 3)
    (outcome Op.Cand ~t2:5 ~t1:5);
  Alcotest.(check (pair bool int)) "CNOR equal: exit FALSE" (false, 2)
    (outcome Op.Cnor ~t2:5 ~t1:5);
  Alcotest.(check (pair bool int)) "CNOR unequal: continue" (false, 3)
    (outcome Op.Cnor ~t2:5 ~t1:6);
  Alcotest.(check (pair bool int)) "CNAND unequal: exit TRUE" (true, 2)
    (outcome Op.Cnand ~t2:5 ~t1:6);
  Alcotest.(check (pair bool int)) "CNAND equal: continue" (false, 3)
    (outcome Op.Cnand ~t2:5 ~t1:5)

let test_push_actions_table () =
  List.iter
    (fun (action, expected) ->
      let o =
        Interp.run
          (Program.v [ Insn.make action; Insn.make ~op:Op.Eq (Action.Pushlit expected) ])
          (Packet.of_string "")
      in
      Alcotest.(check bool) (Action.name action) true o.Interp.accept)
    [
      (Action.Pushzero, 0); (Action.Pushone, 1); (Action.Pushffff, 0xffff);
      (Action.Pushff00, 0xff00); (Action.Push00ff, 0x00ff); (Action.Pushlit 1234, 1234);
    ]

(* {1 Properties of the optimization layers} *)

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent" ~count:500
    (QCheck.make Testutil.gen_valid_insns)
    (fun insns ->
      (* Reuse program generation via decompilation-ish: build exprs from
         random words instead; simpler: simplify twice on random exprs is
         covered in test_expr — here check peephole idempotence. *)
      let p = Program.v insns in
      let once = Peephole.optimize p in
      Program.equal once (Peephole.optimize once))

let prop_bsd_equals_paper_without_shortcircuit =
  QCheck.Test.make ~name:"`Bsd = `Paper when no short-circuit op" ~count:500
    Testutil.arb_program_packet
    (fun (insns, packet) ->
      let sc (i : Insn.t) = Op.is_short_circuit i.Insn.op in
      QCheck.assume (not (List.exists sc insns));
      let p = Program.v insns in
      Interp.accepts ~semantics:`Paper p packet = Interp.accepts ~semantics:`Bsd p packet)

let prop_fast_scratch_reuse_safe =
  (* The fast interpreter reuses one scratch stack; interleaving runs of two
     different compiled filters must not cross-contaminate. *)
  QCheck.Test.make ~name:"fast interpreter scratch isolation" ~count:300
    Testutil.arb_program_packet
    (fun (insns, packet) ->
      let p1 = Program.v insns in
      match (Validate.check p1, Validate.check Predicates.fig_3_9) with
      | Ok v1, Ok v2 ->
        let f1 = Fast.compile v1 and f2 = Fast.compile v2 in
        let a = Fast.run f1 packet in
        let _ = Fast.run f2 (Testutil.pup_frame ()) in
        let b = Fast.run f1 packet in
        a = b
      | _ -> false)

(* {1 The documented `Paper vs `Bsd short-circuit divergence, pinned}

   When a short-circuit operator does {e not} terminate the program, `Paper
   pushes its result word and `Bsd pushes nothing (see Interp). Three
   distinct observable consequences exist; one regression program pins
   each. *)

let run_both insns =
  let p = Program.v insns in
  (Interp.run ~semantics:`Paper p (Packet.of_string ""),
   Interp.run ~semantics:`Bsd p (Packet.of_string ""))

let test_bsd_divergence_leftover_word () =
  (* Class 1: the pushed result buries an older word; the verdicts read
     different stack tops. *)
  let paper, bsd =
    run_both
      [ Insn.make Action.Pushzero;
        Insn.make (Action.Pushlit 5);
        Insn.make ~op:Op.Cand (Action.Pushlit 5) (* equal: continues *) ]
  in
  Alcotest.(check bool) "`Paper reads the CAND result (1): accept" true paper.Interp.accept;
  Alcotest.(check bool) "`Bsd reads the buried zero: reject" false bsd.Interp.accept

let test_bsd_divergence_empty_stack () =
  (* Class 2: `Bsd drains the stack entirely, hitting the empty-stack-accepts
     rule where `Paper leaves a zero on top. *)
  let paper, bsd =
    run_both
      [ Insn.make (Action.Pushlit 5);
        Insn.make ~op:Op.Cnor (Action.Pushlit 6) (* unequal: continues *) ]
  in
  Alcotest.(check bool) "`Paper leaves 0: reject" false paper.Interp.accept;
  Alcotest.(check bool) "`Bsd leaves nothing: empty stack accepts" true bsd.Interp.accept

let test_bsd_divergence_underflow () =
  (* Class 3: a later operator relies on the word `Paper pushed; under `Bsd
     it underflows at run time and rejects with an error. *)
  let paper, bsd =
    run_both
      [ Insn.make (Action.Pushlit 5);
        Insn.make ~op:Op.Cand (Action.Pushlit 5) (* equal: continues *);
        Insn.make ~op:Op.And Action.Pushone ]
  in
  Alcotest.(check bool) "`Paper: 1 AND 1 accepts" true paper.Interp.accept;
  Alcotest.(check bool) "`Bsd underflows" true
    (match bsd.Interp.error with Some (Interp.Stack_underflow _) -> true | _ -> false);
  Alcotest.(check bool) "`Bsd rejects" false bsd.Interp.accept

let test_empty_program_edge_cases () =
  let empty = Program.empty () in
  Alcotest.(check bool) "empty accepts empty packet" true
    (Interp.accepts empty (Packet.of_string ""));
  let v = Validate.check_exn empty in
  Alcotest.(check int) "needs no packet words" 0 v.Validate.min_packet_words;
  Alcotest.(check bool) "fast agrees" true (Fast.run (Fast.compile v) (Packet.of_string ""));
  Alcotest.(check bool) "closure agrees" true
    (Closure.run (Closure.compile v) (Packet.of_string ""));
  (* Decision tree with an accept-all resident. *)
  let tree = Decision.build [ (v, "all") ] in
  Alcotest.(check (option string)) "tree matches accept-all" (Some "all")
    (Decision.classify tree (Packet.of_string ""))

let test_nop_insn_is_identity () =
  (* {nopush, nop} between any two instructions changes nothing. *)
  let base = Predicates.fig_3_8 in
  let padded =
    Program.v ~priority:(Program.priority base)
      (List.concat_map (fun i -> [ Insn.make Action.Nopush; i ]) (Program.insns base))
  in
  List.iter
    (fun frame ->
      Alcotest.(check bool) "same verdict with nops" (Interp.accepts base frame)
        (Interp.accepts padded frame))
    [ Testutil.pup_frame (); Testutil.pup_frame ~ptype:0 (); Testutil.pup_frame ~etype:7 () ]

let suite =
  ( "semantics",
    [
      Alcotest.test_case "comparison operators (fig 3-6)" `Quick test_comparison_table;
      Alcotest.test_case "bitwise operators (fig 3-6)" `Quick test_bitwise_table;
      Alcotest.test_case "arithmetic extensions" `Quick test_arithmetic_table;
      Alcotest.test_case "short-circuit table (fig 3-6)" `Quick test_short_circuit_table;
      Alcotest.test_case "push actions (fig 3-6)" `Quick test_push_actions_table;
      QCheck_alcotest.to_alcotest prop_simplify_idempotent;
      QCheck_alcotest.to_alcotest prop_bsd_equals_paper_without_shortcircuit;
      Alcotest.test_case "`Bsd divergence: leftover word" `Quick
        test_bsd_divergence_leftover_word;
      Alcotest.test_case "`Bsd divergence: empty-stack accept" `Quick
        test_bsd_divergence_empty_stack;
      Alcotest.test_case "`Bsd divergence: run-time underflow" `Quick
        test_bsd_divergence_underflow;
      QCheck_alcotest.to_alcotest prop_fast_scratch_reuse_safe;
      Alcotest.test_case "empty program edges" `Quick test_empty_program_edge_cases;
      Alcotest.test_case "nop is identity" `Quick test_nop_insn_is_identity;
    ] )
