open Pf_kernel
module Packet = Pf_pkt.Packet
module Engine = Pf_sim.Engine
module Process = Pf_sim.Process
module Addr = Pf_net.Addr
module Frame = Pf_net.Frame

(* Two hosts on a 3Mb experimental Ethernet, free cost model unless timing
   is being asserted. *)
let mk_world ?(costs = Pf_sim.Costs.free) ?(rate = 3.) () =
  let eng = Engine.create () in
  let link = Pf_net.Link.create eng Frame.Exp3 ~rate_mbit:rate () in
  let alice = Host.create ~costs link ~name:"alice" ~addr:(Addr.exp 1) in
  let bob = Host.create ~costs link ~name:"bob" ~addr:(Addr.exp 2) in
  (eng, link, alice, bob)

let set_filter_exn port program =
  match Pfdev.set_filter port program with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pfdev.pp_install_error e)

let socket_filter ?(priority = 0) s =
  Pf_filter.Predicates.pup_dst_socket ~priority (Int32.of_int s)

(* {1 End-to-end write -> demux -> read} *)

let test_write_read_end_to_end () =
  let eng, _, alice, bob = mk_world () in
  let port_b = Pfdev.open_port (Host.pf bob) in
  set_filter_exn port_b Pf_filter.Predicates.accept_all;
  let received = ref None in
  let _rx =
    Host.spawn bob ~name:"reader" (fun () ->
        match Pfdev.read port_b with
        | Some capture -> received := Some capture.Pfdev.packet
        | None -> ())
  in
  let frame = Testutil.pup_frame ~dst_byte:2 ~src_byte:1 () in
  let port_a = Pfdev.open_port (Host.pf alice) in
  let _tx = Host.spawn alice ~name:"writer" (fun () -> Pfdev.write port_a frame) in
  Engine.run eng;
  match !received with
  | Some packet ->
    (* "The entire packet, including the data-link layer header, is
       returned." *)
    Alcotest.(check bool) "whole frame delivered" true (Packet.equal frame packet)
  | None -> Alcotest.fail "nothing received"

let test_priority_order () =
  let eng, _, alice, bob = mk_world () in
  let pf = Host.pf bob in
  let low = Pfdev.open_port pf in
  let high = Pfdev.open_port pf in
  (* Both filters match the packet; priority decides. *)
  set_filter_exn low (socket_filter ~priority:1 35);
  set_filter_exn high (socket_filter ~priority:9 35);
  let winner = ref "" in
  let reader name port =
    ignore
      (Host.spawn bob ~name (fun () ->
           Pfdev.set_timeout port (Some 50_000);
           match Pfdev.read port with
           | Some _ -> winner := !winner ^ name
           | None -> ()))
  in
  reader "high" high;
  reader "low" low;
  let port_a = Pfdev.open_port (Host.pf alice) in
  let _tx =
    Host.spawn alice ~name:"writer" (fun () ->
        Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ()))
  in
  Engine.run eng;
  Alcotest.(check string) "only the high-priority port gets it" "high" !winner

let test_equal_priority_first_bound () =
  let eng, _, alice, bob = mk_world () in
  let pf = Host.pf bob in
  let first = Pfdev.open_port pf in
  let second = Pfdev.open_port pf in
  set_filter_exn first (socket_filter ~priority:5 35);
  set_filter_exn second (socket_filter ~priority:5 35);
  let got_first = ref 0 and got_second = ref 0 in
  ignore
    (Host.spawn bob ~name:"r1" (fun () ->
         Pfdev.set_timeout first (Some 50_000);
         match Pfdev.read first with Some _ -> incr got_first | None -> ()));
  ignore
    (Host.spawn bob ~name:"r2" (fun () ->
         Pfdev.set_timeout second (Some 50_000);
         match Pfdev.read second with Some _ -> incr got_second | None -> ()));
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ())));
  Engine.run eng;
  Alcotest.(check int) "first-opened wins ties" 1 !got_first;
  Alcotest.(check int) "second gets nothing" 0 !got_second

let test_copy_all () =
  let eng, _, alice, bob = mk_world () in
  let pf = Host.pf bob in
  let monitor = Pfdev.open_port pf in
  let app = Pfdev.open_port pf in
  set_filter_exn monitor (Pf_filter.Program.with_priority Pf_filter.Predicates.accept_all 200);
  Pfdev.set_copy_all monitor true;
  set_filter_exn app (socket_filter ~priority:5 35);
  let mon_got = ref 0 and app_got = ref 0 in
  ignore
    (Host.spawn bob ~name:"mon" (fun () ->
         Pfdev.set_timeout monitor (Some 50_000);
         while Pfdev.read monitor <> None do
           incr mon_got
         done));
  ignore
    (Host.spawn bob ~name:"app" (fun () ->
         Pfdev.set_timeout app (Some 50_000);
         while Pfdev.read app <> None do
           incr app_got
         done));
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ());
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ~dst_socket:99l ())));
  Engine.run eng;
  (* The monitor sees both packets; the app still gets its socket-35 packet
     ("without disturbing the processes being monitored"). *)
  Alcotest.(check int) "monitor saw both" 2 !mon_got;
  Alcotest.(check int) "app still got its packet" 1 !app_got

let test_queue_overflow_and_drop_count () =
  let eng, _, alice, bob = mk_world () in
  let port = Pfdev.open_port (Host.pf bob) in
  set_filter_exn port Pf_filter.Predicates.accept_all;
  Pfdev.set_queue_limit port 4;
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"flood" (fun () ->
         for _ = 1 to 10 do
           Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ())
         done));
  Engine.run eng;
  (* No reader: only 4 packets fit. *)
  Alcotest.(check int) "queue holds limit" 4 (Pfdev.poll port);
  Alcotest.(check int) "overflows counted" 6 (Pf_sim.Stats.get (Host.stats bob) "pf.drop.overflow");
  (* dropped_before counts overflows that happened before a packet was
     queued: the first four were queued before any drop, so they carry 0;
     packets arriving after the overflow would carry 6. *)
  let seen_drops = ref (-1) in
  ignore
    (Host.spawn bob ~name:"late" (fun () ->
         match Pfdev.read port with
         | Some c -> seen_drops := c.Pfdev.dropped_before
         | None -> ()));
  ignore
    (Host.spawn alice ~name:"one-more" (fun () ->
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ())));
  Engine.run eng;
  Alcotest.(check int) "early capture reports no drops" 0 !seen_drops;
  (* Now there is room again; the new arrival records the 6 earlier drops. *)
  let late_drops = ref (-1) in
  ignore
    (Host.spawn bob ~name:"later" (fun () ->
         (* skip the three still queued from the flood *)
         ignore (Pfdev.read port);
         ignore (Pfdev.read port);
         ignore (Pfdev.read port);
         match Pfdev.read port with
         | Some c -> late_drops := c.Pfdev.dropped_before
         | None -> ()));
  Engine.run eng;
  Alcotest.(check int) "post-overflow capture reports drops" 6 !late_drops

let test_read_timeout () =
  let eng, _, _, bob = mk_world () in
  let port = Pfdev.open_port (Host.pf bob) in
  set_filter_exn port Pf_filter.Predicates.accept_all;
  Pfdev.set_timeout port (Some 1000);
  let result = ref (Some ()) in
  let t = ref 0 in
  ignore
    (Host.spawn bob ~name:"reader" (fun () ->
         result := Option.map (fun _ -> ()) (Pfdev.read port);
         t := Engine.now eng));
  Engine.run eng;
  Alcotest.(check (option unit)) "timed out" None !result;
  Alcotest.(check int) "after 1ms" 1000 !t

let test_batch_read () =
  let eng, _, alice, bob = mk_world () in
  let port = Pfdev.open_port (Host.pf bob) in
  set_filter_exn port Pf_filter.Predicates.accept_all;
  let batches = ref [] in
  ignore
    (Host.spawn bob ~name:"reader" (fun () ->
         (* Let the burst accumulate so one system call drains it. *)
         Process.pause 50_000;
         Pfdev.set_timeout port (Some 100_000);
         let rec go () =
           match Pfdev.read_batch port with
           | [] -> ()
           | captures ->
             batches := List.length captures :: !batches;
             go ()
         in
         go ()));
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write_batch port_a
           (List.init 5 (fun _ -> Testutil.pup_frame ~dst_byte:2 ()))));
  Engine.run eng;
  Alcotest.(check int) "all five delivered" 5 (List.fold_left ( + ) 0 !batches);
  Alcotest.(check bool) "fewer syscalls than packets" true (List.length !batches < 5)

let test_select () =
  let eng, _, alice, bob = mk_world () in
  let pf = Host.pf bob in
  let p1 = Pfdev.open_port pf in
  let p2 = Pfdev.open_port pf in
  set_filter_exn p1 (socket_filter 35);
  set_filter_exn p2 (socket_filter 99);
  let ready = ref [] in
  ignore
    (Host.spawn bob ~name:"selector" (fun () ->
         match Pfdev.select ~timeout:100_000 [ p1; p2 ] with
         | [] -> ()
         | ports -> ready := List.map Pfdev.poll ports));
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ~dst_socket:99l ())));
  Engine.run eng;
  Alcotest.(check (list int)) "one port ready with one packet" [ 1 ] !ready

let test_select_timeout () =
  let eng, _, _, bob = mk_world () in
  let p1 = Pfdev.open_port (Host.pf bob) in
  set_filter_exn p1 Pf_filter.Predicates.accept_all;
  let out = ref [ p1 ] in
  ignore
    (Host.spawn bob ~name:"selector" (fun () -> out := Pfdev.select ~timeout:500 [ p1 ]));
  Engine.run eng;
  Alcotest.(check int) "empty on timeout" 0 (List.length !out)

let test_signal_callback () =
  let eng, _, alice, bob = mk_world () in
  let port = Pfdev.open_port (Host.pf bob) in
  set_filter_exn port Pf_filter.Predicates.accept_all;
  let fired = ref 0 in
  Pfdev.set_signal port (Some (fun () -> incr fired));
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ())));
  Engine.run eng;
  Alcotest.(check int) "signal fired" 1 !fired

let test_no_filter_no_delivery () =
  let eng, _, alice, bob = mk_world () in
  let port = Pfdev.open_port (Host.pf bob) in
  (* No filter installed: port must match nothing. *)
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ())));
  Engine.run eng;
  Alcotest.(check int) "nothing queued" 0 (Pfdev.poll port);
  Alcotest.(check int) "counted unmatched" 1
    (Pf_sim.Stats.get (Host.stats bob) "pf.drop.nomatch")

let test_status () =
  let _, _, _, bob = mk_world () in
  let s = Pfdev.status (Host.pf bob) in
  Alcotest.(check int) "header length" 4 s.Pfdev.header_length;
  Alcotest.(check int) "address length" 1 s.Pfdev.address_length;
  Alcotest.(check int) "mtu" 576 s.Pfdev.mtu;
  Alcotest.(check bool) "address" true (Addr.equal s.Pfdev.address (Addr.exp 2));
  Alcotest.(check bool) "broadcast" true (Addr.equal s.Pfdev.broadcast Addr.broadcast_exp)

let test_timestamps () =
  let eng, _, alice, bob = mk_world ~costs:Pf_sim.Costs.microvax_ii () in
  let port = Pfdev.open_port (Host.pf bob) in
  set_filter_exn port Pf_filter.Predicates.accept_all;
  Pfdev.set_timestamps port true;
  let stamp = ref None in
  ignore
    (Host.spawn bob ~name:"reader" (fun () ->
         match Pfdev.read port with
         | Some c -> stamp := c.Pfdev.timestamp
         | None -> ()));
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Process.pause 5_000;
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ())));
  Engine.run eng;
  match !stamp with
  | Some t -> Alcotest.(check bool) "timestamp after send time" true (t > 5_000)
  | None -> Alcotest.fail "no timestamp"

let test_set_filter_rejects_invalid () =
  let _, _, _, bob = mk_world () in
  let port = Pfdev.open_port (Host.pf bob) in
  let bad = Pf_filter.Program.v [ Pf_filter.Insn.make ~op:Pf_filter.Op.And Pf_filter.Action.Nopush ] in
  Alcotest.(check bool) "invalid filter refused" true
    (Result.is_error (Pfdev.set_filter port bad))

(* {1 Timing: the analytical model of §6.5.1/6.5.2} *)

let test_receive_path_cost () =
  (* One 128-byte packet, kernel demux, no batching: the paper's table 6-8
     says ~2.3 ms elapsed on a MicroVAX-II. Our primitives must land close
     (±20%): interrupt 0.9 + wakeup 0.2 + switch 0.4 + syscall 0.25 + copy
     0.625 = 2.375 ms. *)
  let eng, _, alice, bob = mk_world ~costs:Pf_sim.Costs.microvax_ii ~rate:10. () in
  let port = Pfdev.open_port (Host.pf bob) in
  set_filter_exn port Pf_filter.Predicates.accept_all;
  let t_send = ref 0 and t_recv = ref 0 in
  ignore
    (Host.spawn bob ~name:"reader" (fun () ->
         ignore (Pfdev.read port);
         t_recv := Engine.now eng));
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         (* 124-byte payload = 128-byte frame on Exp3 *)
         t_send := Engine.now eng;
         Pfdev.write port_a
           (Pf_net.Frame.encode Frame.Exp3 ~dst:(Addr.exp 2) ~src:(Addr.exp 1)
              ~ethertype:2
              (Packet.of_string (String.make 124 'x')))));
  Engine.run eng;
  let wire = 128 * 8 / 10 in
  let recv_elapsed = !t_recv - !t_send - wire in
  (* Subtract the sender-side cost (syscall+copy+send-path ≈ 1.9ms per
     table 6-1) to isolate the receive path. *)
  let send_cost = 250 + 500 + 125 + 1000 + 31 in
  let recv_only = recv_elapsed - send_cost - 50 (* link latency *) in
  Alcotest.(check bool)
    (Printf.sprintf "receive path %.2fms within 2.3ms ±25%%" (float_of_int recv_only /. 1000.))
    true
    (recv_only > 1725 && recv_only < 2875)

(* {1 Pipes and the user-level demultiplexer} *)

let test_pipe () =
  let eng, _, _, bob = mk_world () in
  let pipe = Pipe.create ~capacity:2 bob in
  let got = ref [] in
  ignore
    (Host.spawn bob ~name:"reader" (fun () ->
         let rec go () =
           match Pipe.read pipe with
           | Some p ->
             got := Packet.to_string p :: !got;
             go ()
           | None -> ()
         in
         go ()));
  ignore
    (Host.spawn bob ~name:"writer" (fun () ->
         List.iter (fun s -> Pipe.write pipe (Packet.of_string s)) [ "a"; "b"; "c"; "d" ];
         Pipe.close pipe));
  Engine.run eng;
  Alcotest.(check (list string)) "fifo order" [ "a"; "b"; "c"; "d" ] (List.rev !got)

let test_pipe_blocking_write () =
  let eng, _, _, bob = mk_world () in
  let pipe = Pipe.create ~capacity:1 bob in
  let wrote_second = ref 0 in
  ignore
    (Host.spawn bob ~name:"writer" (fun () ->
         Pipe.write pipe (Packet.of_string "1");
         Pipe.write pipe (Packet.of_string "2");
         wrote_second := Engine.now eng));
  ignore
    (Host.spawn bob ~name:"reader" (fun () ->
         Process.pause 10_000;
         ignore (Pipe.read pipe);
         ignore (Pipe.read pipe)));
  Engine.run eng;
  Alcotest.(check bool) "second write blocked on full pipe" true (!wrote_second >= 10_000)

let test_userdemux_forwards () =
  let eng, _, alice, bob = mk_world () in
  (* Route on the Pup destination socket's low word (frame word 8). *)
  let route pkt =
    match Packet.word_opt pkt 8 with
    | Some 35 -> Some 0
    | Some 99 -> Some 1
    | Some _ | None -> None
  in
  let demux = Userdemux.start bob ~route ~clients:2 () in
  let got0 = ref 0 and got1 = ref 0 in
  let client i counter =
    ignore
      (Host.spawn bob ~name:(Printf.sprintf "client%d" i) (fun () ->
           let rec go () =
             match Pipe.read ~timeout:100_000 (Userdemux.client_pipe demux i) with
             | Some _ ->
               incr counter;
               go ()
             | None -> ()
           in
           go ()))
  in
  client 0 got0;
  client 1 got1;
  let port_a = Pfdev.open_port (Host.pf alice) in
  ignore
    (Host.spawn alice ~name:"writer" (fun () ->
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ~dst_socket:35l ());
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ~dst_socket:99l ());
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ~dst_socket:35l ());
         Pfdev.write port_a (Testutil.pup_frame ~dst_byte:2 ~dst_socket:7l ())));
  Engine.run ~until:1_000_000 eng;
  Alcotest.(check int) "client 0 got socket-35 traffic" 2 !got0;
  Alcotest.(check int) "client 1 got socket-99 traffic" 1 !got1;
  Alcotest.(check int) "three forwarded" 3 (Userdemux.forwarded demux);
  Userdemux.stop demux;
  Engine.run eng

(* {1 The demux flow cache}

   Decisions are memoized keyed on the packet bytes at the union read set of
   the installed filters; every test here drives [Pfdev.demux] directly (it
   is the interrupt-level entry point, no process context needed). *)

let cache_frame ?(dst_socket = 35l) () =
  Testutil.pup_frame ~dst_byte:2 ~src_byte:1 ~dst_socket ()

let test_cache_warm_hit () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  let hit_frame = cache_frame () in
  let miss_frame = cache_frame ~dst_socket:99l () in
  Alcotest.(check bool) "cold accept" true (Pfdev.demux pf hit_frame);
  Alcotest.(check bool) "warm accept" true (Pfdev.demux pf hit_frame);
  Alcotest.(check bool) "cold reject" false (Pfdev.demux pf miss_frame);
  (* Negative decisions are cached too: a repeated non-matching header
     pattern also skips filter evaluation. *)
  Alcotest.(check bool) "warm reject" false (Pfdev.demux pf miss_frame);
  let cs = Pfdev.cache_stats pf in
  Alcotest.(check int) "two hits" 2 cs.Pfdev.hits;
  Alcotest.(check int) "two misses" 2 cs.Pfdev.misses;
  Alcotest.(check int) "two entries" 2 cs.Pfdev.entries;
  Alcotest.(check int) "hit path counts accepts" 2 (Pfdev.port_accepted port);
  Alcotest.(check int) "stats mirror the struct" 2
    (Pf_sim.Stats.get (Host.stats bob) "pf.cache.hit");
  Engine.run eng;
  Alcotest.(check int) "hit path still delivers" 2 (Pfdev.poll port)

let test_cache_hit_is_cheaper () =
  (* The whole point: with calibrated costs, a warm demux of the same header
     pattern must charge less interrupt CPU than the cold one. *)
  let eng, _, _, bob = mk_world ~costs:Pf_sim.Costs.microvax_ii () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  let frame = cache_frame () in
  ignore (Pfdev.demux pf frame : bool);
  let cold = Pf_sim.Stats.get (Host.stats bob) "pf.demux_cpu_us" in
  ignore (Pfdev.demux pf frame : bool);
  let warm = Pf_sim.Stats.get (Host.stats bob) "pf.demux_cpu_us" - cold in
  Alcotest.(check bool)
    (Printf.sprintf "warm demux (%d us) cheaper than cold (%d us)" warm cold)
    true (warm < cold);
  Engine.run eng

let test_cache_invalidated_on_set_filter () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  let frame = cache_frame () in
  Alcotest.(check bool) "accepted before the swap" true (Pfdev.demux pf frame);
  set_filter_exn port Pf_filter.Predicates.reject_all;
  Alcotest.(check bool) "no stale hit after set_filter" false (Pfdev.demux pf frame);
  Alcotest.(check int) "the probe missed" 0 (Pfdev.cache_stats pf).Pfdev.hits;
  Engine.run eng

let test_cache_invalidated_on_close_port () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  let frame = cache_frame () in
  Alcotest.(check bool) "accepted while open" true (Pfdev.demux pf frame);
  Pfdev.close_port port;
  Alcotest.(check bool) "no stale delivery to a closed port" false (Pfdev.demux pf frame);
  Alcotest.(check int) "the probe missed" 0 (Pfdev.cache_stats pf).Pfdev.hits;
  Engine.run eng

let test_cache_invalidated_on_open_port () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let low = Pfdev.open_port pf in
  set_filter_exn low (socket_filter ~priority:1 35);
  let frame = cache_frame () in
  Alcotest.(check bool) "low wins alone" true (Pfdev.demux pf frame);
  let high = Pfdev.open_port pf in
  set_filter_exn high (socket_filter ~priority:9 35);
  Alcotest.(check bool) "still accepted" true (Pfdev.demux pf frame);
  Alcotest.(check int) "new high-priority port wins, not the cached one" 1
    (Pfdev.port_accepted high);
  Alcotest.(check int) "low got only the first" 1 (Pfdev.port_accepted low);
  Engine.run eng

let test_cache_invalidated_on_set_priority () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let a = Pfdev.open_port pf in
  let b = Pfdev.open_port pf in
  set_filter_exn a (socket_filter ~priority:9 35);
  set_filter_exn b (socket_filter ~priority:1 35);
  let frame = cache_frame () in
  Alcotest.(check bool) "accepted" true (Pfdev.demux pf frame);
  Alcotest.(check int) "a wins at first" 1 (Pfdev.port_accepted a);
  Pfdev.set_priority b 20;
  Alcotest.(check bool) "still accepted" true (Pfdev.demux pf frame);
  Alcotest.(check int) "b wins after set_priority, no stale hit" 1
    (Pfdev.port_accepted b);
  Engine.run eng

let test_cache_bypass_unbounded_read_set () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  (* Data-dependent Pushind (the IHL-following UDP matcher): the read set is
     Unbounded, so no key covers the verdict and the cache must stand aside. *)
  set_filter_exn port (Pf_filter.Predicates.udp_dst_port_any_ihl 53);
  (match (Option.get (Pfdev.port_analysis port)).Pf_filter.Analysis.read_set with
  | Pf_filter.Analysis.Unbounded -> ()
  | Pf_filter.Analysis.Exact _ ->
    Alcotest.fail "expected an unbounded read set for the any-IHL matcher");
  let frame = Testutil.ip_udp_frame ~dst_port:53 in
  Alcotest.(check bool) "accepted" true (Pfdev.demux pf frame);
  Alcotest.(check bool) "accepted again" true (Pfdev.demux pf frame);
  let cs = Pfdev.cache_stats pf in
  Alcotest.(check int) "both demuxes bypassed" 2 cs.Pfdev.bypasses;
  Alcotest.(check int) "no hits" 0 cs.Pfdev.hits;
  Alcotest.(check int) "no misses" 0 cs.Pfdev.misses;
  Alcotest.(check int) "nothing stored" 0 cs.Pfdev.entries;
  Engine.run eng

let test_cache_capacity_eviction () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  Pfdev.set_cache_capacity pf 2;
  let f s = cache_frame ~dst_socket:s () in
  ignore (Pfdev.demux pf (f 1l) : bool);
  ignore (Pfdev.demux pf (f 2l) : bool);
  ignore (Pfdev.demux pf (f 3l) : bool);
  let cs = Pfdev.cache_stats pf in
  Alcotest.(check int) "bounded at capacity" 2 cs.Pfdev.entries;
  Alcotest.(check int) "FIFO-evicted the oldest" 1 cs.Pfdev.evictions;
  (* The evicted (oldest) key misses again; the youngest still hits. *)
  ignore (Pfdev.demux pf (f 1l) : bool);
  ignore (Pfdev.demux pf (f 3l) : bool);
  let cs = Pfdev.cache_stats pf in
  Alcotest.(check int) "evicted key missed" 4 cs.Pfdev.misses;
  Alcotest.(check int) "resident key hit" 1 cs.Pfdev.hits;
  Engine.run eng

let test_cache_disabled () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  Pfdev.set_cache_enabled pf false;
  let frame = cache_frame () in
  Alcotest.(check bool) "accepted" true (Pfdev.demux pf frame);
  Alcotest.(check bool) "accepted again" true (Pfdev.demux pf frame);
  let cs = Pfdev.cache_stats pf in
  Alcotest.(check bool) "reported disabled" false cs.Pfdev.enabled;
  Alcotest.(check int) "no hits" 0 cs.Pfdev.hits;
  Alcotest.(check int) "no misses" 0 cs.Pfdev.misses;
  Alcotest.(check int) "nothing stored" 0 cs.Pfdev.entries;
  Pfdev.set_cache_enabled pf true;
  ignore (Pfdev.demux pf frame : bool);
  ignore (Pfdev.demux pf frame : bool);
  Alcotest.(check int) "works again once re-enabled" 1 (Pfdev.cache_stats pf).Pfdev.hits;
  Engine.run eng

let test_cache_invalidation_triggers_counted () =
  (* Every remaining configuration mutation must flush: each call bumps the
     invalidation counter (the correctness-critical ones are exercised
     end-to-end above and by the fuzz oracle). *)
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  let bumps name f =
    let before = (Pfdev.cache_stats pf).Pfdev.invalidations in
    f ();
    Alcotest.(check bool) (name ^ " invalidates") true
      ((Pfdev.cache_stats pf).Pfdev.invalidations > before)
  in
  bumps "set_strategy" (fun () -> Pfdev.set_strategy pf `Decision_tree);
  bumps "set_copy_all" (fun () -> Pfdev.set_copy_all port true);
  bumps "set_tap" (fun () -> Pfdev.set_tap port true);
  bumps "set_cost_limit" (fun () -> Pfdev.set_cost_limit pf (Some 10_000));
  bumps "set_cache_capacity" (fun () -> Pfdev.set_cache_capacity pf 8);
  Engine.run eng

(* {1 Queue-limit overflow accounting} *)

let test_dropped_before_on_next_read () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  Pfdev.set_queue_limit port 1;
  let frame = cache_frame () in
  ignore (Pfdev.demux pf frame : bool);
  ignore (Pfdev.demux pf frame : bool);
  ignore (Pfdev.demux pf frame : bool);
  Engine.run eng;
  (* One queued, two overflowed. *)
  Alcotest.(check int) "port drop counter" 2 (Pfdev.port_dropped port);
  Alcotest.(check int) "stats overflow drops" 2
    (Pf_sim.Stats.get (Host.stats bob) "pf.drop.overflow");
  let c1 = ref None in
  ignore (Host.spawn bob ~name:"r1" (fun () -> c1 := Pfdev.read port));
  Engine.run eng;
  (match !c1 with
  | Some c ->
    (* The survivor was enqueued before anything overflowed. *)
    Alcotest.(check int) "queued before the drops" 0 c.Pfdev.dropped_before
  | None -> Alcotest.fail "first read returned nothing");
  ignore (Pfdev.demux pf frame : bool);
  Engine.run eng;
  let c2 = ref None in
  ignore (Host.spawn bob ~name:"r2" (fun () -> c2 := Pfdev.read port));
  Engine.run eng;
  match !c2 with
  | Some c ->
    (* §3.3's count is cumulative since the port opened — a read does not
       reset it. *)
    Alcotest.(check int) "next successful read reports both drops" 2 c.Pfdev.dropped_before;
    Alcotest.(check int) "not reset by the read" 2 (Pfdev.port_dropped port)
  | None -> Alcotest.fail "second read returned nothing"

let test_dropped_before_with_read_batch () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  Pfdev.set_queue_limit port 2;
  let frame = cache_frame () in
  ignore (Pfdev.demux pf frame : bool);
  ignore (Pfdev.demux pf frame : bool);
  ignore (Pfdev.demux pf frame : bool);
  Engine.run eng;
  let batch = ref [] in
  ignore (Host.spawn bob ~name:"b1" (fun () -> batch := Pfdev.read_batch port));
  Engine.run eng;
  Alcotest.(check int) "batch returns the two survivors" 2 (List.length !batch);
  List.iter
    (fun (c : Pfdev.capture) ->
      Alcotest.(check int) "survivors predate the overflow" 0 c.Pfdev.dropped_before)
    !batch;
  ignore (Pfdev.demux pf frame : bool);
  Engine.run eng;
  let batch2 = ref [] in
  ignore (Host.spawn bob ~name:"b2" (fun () -> batch2 := Pfdev.read_batch port));
  Engine.run eng;
  match !batch2 with
  | [ c ] -> Alcotest.(check int) "later capture carries the drop count" 1 c.Pfdev.dropped_before
  | l -> Alcotest.failf "expected one capture, got %d" (List.length l)

let test_queue_limit_clamped () =
  let eng, _, _, bob = mk_world () in
  let pf = Host.pf bob in
  let port = Pfdev.open_port pf in
  set_filter_exn port (socket_filter 35);
  Pfdev.set_queue_limit port 0 (* clamps to 1: a port can always hold one *);
  let frame = cache_frame () in
  ignore (Pfdev.demux pf frame : bool);
  ignore (Pfdev.demux pf frame : bool);
  Engine.run eng;
  Alcotest.(check int) "one queued" 1 (Pfdev.poll port);
  Alcotest.(check int) "one dropped" 1 (Pfdev.port_dropped port);
  Engine.run eng

let suite =
  ( "kernel",
    [
      Alcotest.test_case "write/read end to end" `Quick test_write_read_end_to_end;
      Alcotest.test_case "priority order" `Quick test_priority_order;
      Alcotest.test_case "equal priority tie" `Quick test_equal_priority_first_bound;
      Alcotest.test_case "copy_all monitoring" `Quick test_copy_all;
      Alcotest.test_case "queue overflow + drop count" `Quick
        test_queue_overflow_and_drop_count;
      Alcotest.test_case "read timeout" `Quick test_read_timeout;
      Alcotest.test_case "batch read" `Quick test_batch_read;
      Alcotest.test_case "select" `Quick test_select;
      Alcotest.test_case "select timeout" `Quick test_select_timeout;
      Alcotest.test_case "signal callback" `Quick test_signal_callback;
      Alcotest.test_case "no filter, no delivery" `Quick test_no_filter_no_delivery;
      Alcotest.test_case "status ioctl" `Quick test_status;
      Alcotest.test_case "timestamps" `Quick test_timestamps;
      Alcotest.test_case "set_filter validates" `Quick test_set_filter_rejects_invalid;
      Alcotest.test_case "receive path cost (§6.5)" `Quick test_receive_path_cost;
      Alcotest.test_case "pipe fifo" `Quick test_pipe;
      Alcotest.test_case "pipe blocking write" `Quick test_pipe_blocking_write;
      Alcotest.test_case "user demux forwards" `Quick test_userdemux_forwards;
      Alcotest.test_case "flow cache: warm hits" `Quick test_cache_warm_hit;
      Alcotest.test_case "flow cache: hits are cheaper" `Quick test_cache_hit_is_cheaper;
      Alcotest.test_case "flow cache: set_filter invalidates" `Quick
        test_cache_invalidated_on_set_filter;
      Alcotest.test_case "flow cache: close_port invalidates" `Quick
        test_cache_invalidated_on_close_port;
      Alcotest.test_case "flow cache: open_port invalidates" `Quick
        test_cache_invalidated_on_open_port;
      Alcotest.test_case "flow cache: set_priority invalidates" `Quick
        test_cache_invalidated_on_set_priority;
      Alcotest.test_case "flow cache: unbounded read set bypasses" `Quick
        test_cache_bypass_unbounded_read_set;
      Alcotest.test_case "flow cache: capacity eviction" `Quick test_cache_capacity_eviction;
      Alcotest.test_case "flow cache: disable/enable" `Quick test_cache_disabled;
      Alcotest.test_case "flow cache: remaining invalidation triggers" `Quick
        test_cache_invalidation_triggers_counted;
      Alcotest.test_case "queue limit: dropped_before on next read" `Quick
        test_dropped_before_on_next_read;
      Alcotest.test_case "queue limit: read_batch accounting" `Quick
        test_dropped_before_with_read_batch;
      Alcotest.test_case "queue limit: clamped to one" `Quick test_queue_limit_clamped;
    ] )
