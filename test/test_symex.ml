(* The symbolic path engine and the translation-validation layer on top of
   it: path enumeration agrees with the interpreter packet by packet,
   [Equiv] proves the shipped optimizer rewrites and refutes a seeded
   miscompilation with a confirmed, engine-checked witness, and the
   sharpened relation lets [Decision] reorder guard chains that
   [Analysis.relate] alone cannot separate. *)

open Pf_filter
module Packet = Pf_pkt.Packet
module Gen = Pf_fuzz.Gen
module Oracle = Pf_fuzz.Oracle
module Runner = Pf_fuzz.Runner
module Shrink = Pf_fuzz.Shrink
module Pfdev = Pf_kernel.Pfdev
module Host = Pf_kernel.Host

let i ?(op = Op.Nop) action = Insn.make ~op action

let validate_exn p =
  match Validate.check p with
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpectedly invalid: %a" Validate.pp_error e

let relation = Alcotest.testable Analysis.pp_relation ( = )

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let builtins =
  [
    ("fig-3-8", Predicates.fig_3_8);
    ("fig-3-9", Predicates.fig_3_9);
    ("accept-all", Predicates.accept_all);
    ("reject-all", Predicates.reject_all);
    ("pup-type-is-1", Predicates.pup_type_is 1);
    ("pup-dst-socket-35", Predicates.pup_dst_socket 35l);
    ("pup-dst-port", Predicates.pup_dst_port ~host:2 35l);
    ("pup-dst-port-10mb", Predicates.pup_dst_port_10mb ~host:2 35l);
    ("ethertype-ip", Predicates.ethertype_is 0x0800);
    ("udp-dst-port-53", Predicates.udp_dst_port 53);
    ("udp-dst-port-any-ihl-53", Predicates.udp_dst_port_any_ihl 53);
    ("vmtp-dst-entity", Predicates.vmtp_dst_entity 0x1234l);
    ("rarp-request", Predicates.rarp_request ());
    ("rarp-reply-for", Predicates.rarp_reply_for "\x08\x00\x2b\x01\x02\x03");
    ("synthetic-accept-5", Predicates.synthetic ~length:5 ~accept:true);
  ]

(* {1 Symbolic execution agrees with the interpreter} *)

(* The paths of a completed run partition the packets: exactly one path is
   satisfied, and its verdict is the interpreter's. An incomplete run may
   miss the packet's path but must never claim a wrong verdict or two
   paths at once. *)
let check_against_interp name program packet =
  let v = validate_exn program in
  let ctx = Symex.Ctx.create () in
  let outcome = Symex.run ctx v in
  let reference = Interp.accepts ~semantics:`Paper program packet in
  let satisfied =
    List.filter (fun p -> Symex.satisfies p.Symex.cond packet)
      outcome.Symex.paths
  in
  match satisfied with
  | [ p ] ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: path verdict matches interp" name)
        reference p.Symex.accept
  | [] ->
      if outcome.Symex.complete then
        Alcotest.failf "%s: complete run but no path matches %a" name
          Packet.pp_hex packet
  | _ ->
      Alcotest.failf "%s: %d paths claim %a (paths must be exclusive)" name
        (List.length satisfied) Packet.pp_hex packet

let test_symex_matches_interp_builtins () =
  let rng = Gen.Rng.make 0x5E11 in
  List.iter
    (fun (name, program) ->
      for _ = 1 to 100 do
        let packet, _ = Gen.packet rng in
        check_against_interp name program packet
      done;
      (* short packets stress the length atoms *)
      for len = 0 to 12 do
        check_against_interp name program
          (Packet.of_words (List.init len (fun i -> i * 257)))
      done)
    builtins

let test_symex_matches_interp_tricky () =
  (* division forks, word-vs-word equality, indirect pushes, and the
     nonzero-top completion rule *)
  let progs =
    [
      ( "div by word",
        Program.v
          [
            i (Action.Pushword 0);
            i ~op:Op.Div (Action.Pushword 1);
            i ~op:Op.Gt (Action.Pushlit 3);
          ] );
      ( "mod by word",
        Program.v
          [ i (Action.Pushword 2); i ~op:Op.Mod (Action.Pushword 0) ] );
      ( "word pair",
        Program.v
          [ i (Action.Pushword 0); i ~op:Op.Eq (Action.Pushword 3) ] );
      ( "indirect",
        Program.v
          [
            i (Action.Pushword 0);
            i ~op:Op.And (Action.Pushlit 7);
            i Action.Pushind;
            i ~op:Op.Eq (Action.Pushlit 9);
          ] );
      ( "arith verdict",
        Program.v
          [ i (Action.Pushword 0); i ~op:Op.Add (Action.Pushword 1) ] );
      ( "masked range",
        Program.v
          [
            i (Action.Pushword 1);
            i ~op:Op.And Action.Push00ff;
            i ~op:Op.Gt (Action.Pushlit 0);
          ] );
    ]
  in
  let rng = Gen.Rng.make 0x7A7A in
  List.iter
    (fun (name, program) ->
      for _ = 1 to 200 do
        let packet, _ = Gen.packet rng in
        check_against_interp name program packet
      done;
      for len = 0 to 6 do
        check_against_interp name program
          (Packet.of_words (List.init len (fun i -> i)))
      done)
    progs

let test_budget_degrades_to_incomplete () =
  (* every instruction forks: 2^n paths blow any small budget *)
  let program =
    Program.v
      (List.concat_map
         (fun n ->
           [ i (Action.Pushword (2 * n)); i ~op:Op.Cand (Action.Pushword ((2 * n) + 1)) ])
         (List.init 10 (fun n -> n))
      @ [ i ~op:Op.Eq (Action.Pushlit 1) ])
  in
  let v = validate_exn program in
  let ctx = Symex.Ctx.create () in
  let outcome = Symex.run ~budget:4 ctx v in
  Alcotest.(check bool) "incomplete" false outcome.Symex.complete;
  Alcotest.(check bool) "some paths survive" true (outcome.Symex.paths <> []);
  (* prefix paths are still genuine: any satisfied path predicts interp *)
  let rng = Gen.Rng.make 0xB06 in
  for _ = 1 to 100 do
    let packet, _ = Gen.packet rng in
    List.iter
      (fun p ->
        if Symex.satisfies p.Symex.cond packet then
          Alcotest.(check bool) "prefix path verdict"
            (Interp.accepts ~semantics:`Paper program packet)
            p.Symex.accept)
      outcome.Symex.paths
  done;
  (* and the budget obstruction is reported in so many words *)
  let r = Equiv.check_programs ~budget:4 v v in
  (match r.Equiv.verdict with
  | Equiv.Unknown -> ()
  | _ -> Alcotest.fail "tiny budget must yield Unknown");
  let msg = Format.asprintf "%a" Equiv.pp_reasons r.Equiv.reasons in
  Alcotest.(check bool)
    (Printf.sprintf "reasons mention the path budget: %s" msg)
    true
    (contains ~affix:"path budget" msg)

(* {1 Equivalence: proofs} *)

let test_equiv_self_proved () =
  List.iter
    (fun (name, program) ->
      let v = validate_exn program in
      let r = Equiv.check_programs v v in
      match r.Equiv.verdict with
      | Equiv.Proved_equal -> ()
      | _ ->
          Alcotest.failf "%s: self-equivalence not proved: %a" name
            Equiv.pp_report r)
    builtins

(* Acceptance criterion: every shipped rewrite over the builtin corpus is
   proved — none is Unknown, none refuted. *)
let test_builtin_rewrites_certified () =
  List.iter
    (fun (name, program) ->
      let v = validate_exn program in
      (* peephole *)
      let opt = Peephole.optimize program in
      let vopt = validate_exn opt in
      (match (Equiv.check_programs v vopt).Equiv.verdict with
      | Equiv.Proved_equal -> ()
      | _ -> Alcotest.failf "%s: peephole rewrite not proved" name);
      (* regopt IR *)
      let ir, _ = Regopt.optimize v in
      (match (Equiv.check_ir v ir).Equiv.verdict with
      | Equiv.Proved_equal -> ()
      | _ -> Alcotest.failf "%s: optimized IR not proved" name);
      (* raise *)
      let raised, _ = Regopt.raise_program v in
      let vraised = validate_exn raised in
      match (Equiv.check_programs v vraised).Equiv.verdict with
      | Equiv.Proved_equal -> ()
      | _ -> Alcotest.failf "%s: raised program not proved" name)
    builtins

(* {1 Counterexample synthesis: the seeded miscompilation}

   [Peephole.For_testing.miscompile_literal_two] rewrites [pushlit 2] to
   [pushone] — the classic wrong-constant strength-reduction bug. The
   checker must refute it with a confirmed witness, the certified entry
   point must fall back to the original program, and the fuzz oracle must
   blame the peephole pass. *)

let with_buggy_peephole f =
  Peephole.For_testing.miscompile_literal_two := true;
  Fun.protect ~finally:(fun () ->
      Peephole.For_testing.miscompile_literal_two := false)
    f

(* The pinned minimal regression the shrinker converges to. *)
let literal_two_program =
  Program.v [ i (Action.Pushword 0); i ~op:Op.Eq (Action.Pushlit 2) ]

let test_buggy_peephole_refuted () =
  with_buggy_peephole (fun () ->
      let fallback, cert = Peephole.optimize_certified literal_two_program in
      match cert with
      | Equiv.Refuted w ->
          (* fall back to the unoptimized program... *)
          Alcotest.(check bool) "falls back to the original" true
            (Program.equal fallback literal_two_program);
          (* ...with a witness the engines really disagree on *)
          let buggy = Peephole.optimize literal_two_program in
          Alcotest.(check bool) "original's verdict on the witness" true
            (Interp.accepts ~semantics:`Paper literal_two_program w);
          Alcotest.(check bool) "miscompiled verdict differs" false
            (Interp.accepts ~semantics:`Paper buggy w);
          (* the oracle blames the peephole equivalence check by name *)
          (match Oracle.check literal_two_program w with
          | Oracle.Disagreement ms ->
              Alcotest.(check bool) "oracle blames equiv-peephole" true
                (List.exists
                   (fun (m : Oracle.mismatch) ->
                     m.Oracle.engine = "equiv-peephole")
                   ms)
          | o ->
              Alcotest.failf "oracle missed the miscompilation: %a"
                Oracle.pp_outcome o)
      | Equiv.Certified -> Alcotest.fail "seeded miscompilation certified"
      | Equiv.Uncertified why ->
          Alcotest.failf "seeded miscompilation uncertified: %s" why)

let test_buggy_peephole_shrinks_to_regression () =
  with_buggy_peephole (fun () ->
      (* a padded variant: dead identity arithmetic around the live
         [pushlit 2] comparison *)
      let padded =
        Program.v
          [
            i (Action.Pushword 0);
            i ~op:Op.Or (Action.Pushlit 0);
            i ~op:Op.Eq (Action.Pushlit 2);
            i (Action.Pushword 1);
            i ~op:Op.Ge (Action.Pushlit 0);
            i ~op:Op.And Action.Nopush;
          ]
      in
      let witness =
        match Peephole.optimize_certified padded with
        | _, Equiv.Refuted w -> w
        | _, Equiv.Certified -> Alcotest.fail "padded miscompilation certified"
        | _, Equiv.Uncertified why ->
            Alcotest.failf "padded miscompilation uncertified: %s" why
      in
      (* keep = "the miscompiled optimum still disagrees with the source" *)
      let keep p pkt =
        match Validate.check p with
        | Error _ -> false
        | Ok _ -> (
            let opt = Peephole.optimize p in
            match Validate.check opt with
            | Error _ -> false
            | Ok _ ->
                Interp.accepts ~semantics:`Paper p pkt
                <> Interp.accepts ~semantics:`Paper opt pkt)
      in
      Alcotest.(check bool) "padded case disagrees" true (keep padded witness);
      let shrunk_p, shrunk_w = Shrink.minimize ~keep padded witness in
      Alcotest.(check bool) "shrunk case still disagrees" true
        (keep shrunk_p shrunk_w);
      (* greedy minimization keeps only the live [pushlit 2] comparison
         (it can even drop the packet dependence: [2 land 1 = 0] while the
         miscompiled [1 land 1 = 1]) *)
      Alcotest.(check bool)
        (Format.asprintf "shrunk to <= 4 insns: %a" Program.pp shrunk_p)
        true
        (Program.insn_count shrunk_p <= 4);
      Alcotest.(check bool) "witness shrunk to <= 1 word" true
        (Packet.word_count shrunk_w <= 1))

(* {1 Every counterexample is runnable on every engine} *)

(* The confirmation matrix of a refuting witness: each side's verdict is
   engine-independent (checked interpreter under both semantics, Fast,
   Closure, Regvm), and the two sides differ — exactly the claim a
   [Counterexample] makes. *)
let confirm_matrix name va vb w =
  let verdict v =
    let program = Validate.program v in
    let reference = Interp.accepts ~semantics:`Paper program w in
    let engines =
      [
        ("interp-bsd", Interp.accepts ~semantics:`Bsd program w);
        ("fast", Fast.run (Fast.compile v) w);
        ("closure", Closure.run (Closure.compile v) w);
        ("regvm", Regvm.run (Regvm.compile v) w);
      ]
    in
    List.iter
      (fun (engine, got) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s agrees on the witness" name engine)
          reference got)
      engines;
    reference
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: witness separates the two sides" name)
    true
    (verdict va <> verdict vb)

let test_counterexamples_confirmed_on_all_engines () =
  (* disagreeing pairs over several domains: plain constants, masked
     words, word-vs-word equality, packet length *)
  let pairs =
    [
      ( "constant",
        literal_two_program,
        Program.v [ i (Action.Pushword 0); i ~op:Op.Eq (Action.Pushlit 3) ] );
      ( "mask",
        Program.v
          [
            i (Action.Pushword 1);
            i ~op:Op.And Action.Push00ff;
            i ~op:Op.Eq (Action.Pushlit 7);
          ],
        Program.v
          [
            i (Action.Pushword 1);
            i ~op:Op.And Action.Pushff00;
            i ~op:Op.Eq (Action.Pushlit 0x0700);
          ] );
      ( "word pair",
        Program.v [ i (Action.Pushword 0); i ~op:Op.Eq (Action.Pushword 2) ],
        Program.v [ i (Action.Pushword 0); i ~op:Op.Neq (Action.Pushword 2) ] );
      ( "length",
        (* out-of-range pushword rejects: accept iff >= 5 (resp. 3) words *)
        Program.v [ i (Action.Pushword 4); i ~op:Op.Ge (Action.Pushlit 0) ],
        Program.v [ i (Action.Pushword 2); i ~op:Op.Ge (Action.Pushlit 0) ] );
    ]
  in
  List.iter
    (fun (name, pa, pb) ->
      let va = validate_exn pa and vb = validate_exn pb in
      match (Equiv.check_programs va vb).Equiv.verdict with
      | Equiv.Counterexample w -> confirm_matrix name va vb w
      | Equiv.Proved_equal ->
          Alcotest.failf "%s: inequivalent pair proved equal" name
      | Equiv.Unknown -> Alcotest.failf "%s: pair not separated" name)
    pairs

(* {1 The sharpened relation closes Analysis.relate's coverage gap} *)

(* [Analysis.relate] separates syntactic guard chains; flip one comparison's
   operand order and it answers Unknown, while the symbolic engine still
   decides the pair. *)
let test_relate_coverage_gap () =
  let guards_w7_is_0 =
    Program.v
      [
        i (Action.Pushword 7);
        i ~op:Op.Cand (Action.Pushlit 0);
        i (Action.Pushword 1);
        i ~op:Op.Eq (Action.Pushlit 2);
      ]
  in
  (* same predicate as [pushword+7; pushlit cand 5; ...] but with the
     trailing comparison's operands swapped: no extractable guard chain *)
  let swapped_w7_is_5 =
    Program.v
      [
        i (Action.Pushlit 5);
        i (Action.Pushword 7);
        i ~op:Op.Eq Action.Nopush;
      ]
  in
  let va = validate_exn guards_w7_is_0 and vb = validate_exn swapped_w7_is_5 in
  Alcotest.check relation "Analysis.relate cannot separate the pair"
    Analysis.Unknown (Analysis.relate va vb);
  Alcotest.check relation "Equiv.relate proves them disjoint" Analysis.Disjoint
    (Equiv.relate va vb);
  (* an operand-swapped reformulation of the same filter: equivalence, too *)
  let plain_w7_is_5 =
    Program.v [ i (Action.Pushword 7); i ~op:Op.Eq (Action.Pushlit 5) ]
  in
  let vc = validate_exn plain_w7_is_5 in
  Alcotest.check relation "Analysis.relate cannot prove the rewrite"
    Analysis.Unknown (Analysis.relate vc vb);
  Alcotest.check relation "Equiv.relate proves equivalence"
    Analysis.Equivalent (Equiv.relate vc vb)

(* The gap matters: [Decision.build]'s equal-priority cheapest-first swap
   fires on an [Equiv]-proven disjoint pair that [Analysis.relate] alone
   would leave in installation order. *)
let test_decision_reorders_via_equiv () =
  let expensive =
    Program.v
      [
        i (Action.Pushword 1);
        i ~op:Op.Cand (Action.Pushlit 2);
        i (Action.Pushword 3);
        i ~op:Op.Cand (Action.Pushlit 0);
        i (Action.Pushlit 0);
        i (Action.Pushword 7);
        i ~op:Op.Eq Action.Nopush;
      ]
  in
  let cheap =
    Program.v
      [ i (Action.Pushlit 5); i (Action.Pushword 7); i ~op:Op.Eq Action.Nopush ]
  in
  let ve = validate_exn expensive and vc = validate_exn cheap in
  (* operand-swapped comparisons leave no guard chains to relate *)
  Alcotest.check relation "the pair is beyond Analysis.relate"
    Analysis.Unknown (Analysis.relate ve vc);
  Alcotest.check relation "but symbolically disjoint" Analysis.Disjoint
    (Equiv.relate ve vc);
  let tree = Decision.build [ (ve, "expensive"); (vc, "cheap") ] in
  (* Packet satisfying the cheap filter: after the Equiv-driven swap it is
     tried first, so only one filter runs. *)
  let pkt = Packet.of_words [ 0; 2; 0; 0; 0; 0; 0; 5 ] in
  let result, stats = Decision.classify_stats tree pkt in
  Alcotest.(check (option string)) "cheap filter accepts" (Some "cheap") result;
  Alcotest.(check int) "only the cheap filter ran" 1
    stats.Decision.filters_run;
  (* and the swap must not change any verdict *)
  let seq = [ (expensive, "expensive"); (cheap, "cheap") ] in
  let rng = Gen.Rng.make 0xD15 in
  for _ = 1 to 200 do
    let pkt, _ = Gen.packet rng in
    let sequential =
      List.find_map
        (fun (p, name) ->
          if Interp.accepts ~semantics:`Paper p pkt then Some name else None)
        seq
    in
    Alcotest.(check (option string)) "tree verdict = sequential verdict"
      sequential
      (fst (Decision.classify_counted tree pkt))
  done

(* {1 Witness synthesis: solve and satisfies} *)

let accept_conds program =
  let v = validate_exn program in
  let outcome = Symex.run (Symex.Ctx.create ()) v in
  Alcotest.(check bool) "enumeration complete" true outcome.Symex.complete;
  List.filter_map
    (fun p -> if p.Symex.accept then Some p.Symex.cond else None)
    outcome.Symex.paths

let test_solve_synthesizes_satisfying_packets () =
  (* masked bits + a disequality + a word-pair equality in one condition *)
  let program =
    Program.v
      [
        i (Action.Pushword 0);
        i ~op:Op.And Action.Pushff00;
        i ~op:Op.Cand (Action.Pushlit 0x1200);
        i (Action.Pushword 1);
        i ~op:Op.Cand (Action.Pushlit 5);
        i (Action.Pushword 2);
        i ~op:Op.Eq (Action.Pushword 3);
      ]
  in
  let conds = accept_conds program in
  Alcotest.(check bool) "at least one accepting path" true (conds <> []);
  List.iter
    (fun cond ->
      match Symex.solve cond with
      | `Sat pkt ->
          Alcotest.(check bool) "synthesized packet satisfies its condition"
            true
            (Symex.satisfies cond pkt);
          Alcotest.(check bool) "and the interpreter accepts it" true
            (Interp.accepts ~semantics:`Paper program pkt)
      | `Unsat -> Alcotest.fail "reachable accepting path reported unsat"
      | `Unknown -> Alcotest.fail "simple masked condition unsolved")
    conds

let test_solve_detects_unsat () =
  (* w0 = 1 AND w0 = 2: the accepting path's condition is contradictory *)
  let program =
    Program.v
      [
        i (Action.Pushword 0);
        i ~op:Op.Cand (Action.Pushlit 1);
        i (Action.Pushword 0);
        i ~op:Op.Eq (Action.Pushlit 2);
      ]
  in
  List.iter
    (fun cond ->
      match Symex.solve cond with
      | `Unsat -> ()
      | `Sat pkt ->
          Alcotest.failf "contradiction solved to %a" Packet.pp_hex pkt
      | `Unknown -> Alcotest.fail "contradiction not refuted")
    (accept_conds program)

(* {1 The pseudodevice certifies installs} *)

let test_pfdev_certify () =
  let costs = Pf_sim.Costs.free in
  let eng = Pf_sim.Engine.create () in
  let link = Pf_net.Link.create eng Pf_net.Frame.Exp3 ~rate_mbit:3. () in
  let host =
    Host.create ~costs link ~name:"certifier" ~addr:(Pf_net.Addr.exp 1)
  in
  let pf = Host.pf host in
  let stats = Host.stats host in
  let install_exn port program =
    match Pfdev.install port program with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "install: %a" Pfdev.pp_install_error e
  in
  (* off by default: nothing recorded *)
  let port0 = Pfdev.open_port pf in
  install_exn port0 Predicates.fig_3_9;
  Alcotest.(check bool) "no certification when not certifying" true
    (Pfdev.port_certification port0 = None);
  Pfdev.set_certify pf true;
  Alcotest.(check bool) "certify sticks" true (Pfdev.certify pf);
  (* each compile strategy's install certifies, and the stat counts it *)
  List.iter
    (fun strategy ->
      let before = Pf_sim.Stats.get stats "pf.certify.proved" in
      Pfdev.set_compile_strategy pf strategy;
      let port = Pfdev.open_port pf in
      install_exn port Predicates.fig_3_9;
      (match Pfdev.port_certification port with
      | Some Equiv.Certified -> ()
      | Some (Equiv.Refuted w) ->
          Alcotest.failf "shipped compile refuted by %a" Packet.pp_hex w
      | Some (Equiv.Uncertified why) ->
          Alcotest.failf "shipped compile uncertified: %s" why
      | None -> Alcotest.fail "certifying install recorded nothing");
      Alcotest.(check int) "pf.certify.proved incremented" (before + 1)
        (Pf_sim.Stats.get stats "pf.certify.proved");
      Pfdev.close_port port)
    [ `Off; `Raise_only; `Regvm ];
  Alcotest.(check int) "no refutations of shipped compiles" 0
    (Pf_sim.Stats.get stats "pf.certify.refuted")

let suite =
  ( "symex",
    [
      Alcotest.test_case "symex matches interp on builtins" `Quick
        test_symex_matches_interp_builtins;
      Alcotest.test_case "symex matches interp on tricky programs" `Quick
        test_symex_matches_interp_tricky;
      Alcotest.test_case "path budget degrades to incomplete" `Quick
        test_budget_degrades_to_incomplete;
      Alcotest.test_case "equiv proves self-equivalence" `Quick
        test_equiv_self_proved;
      Alcotest.test_case "builtin rewrites certified" `Quick
        test_builtin_rewrites_certified;
      Alcotest.test_case "seeded peephole miscompilation refuted" `Quick
        test_buggy_peephole_refuted;
      Alcotest.test_case "miscompilation shrinks to pinned regression" `Quick
        test_buggy_peephole_shrinks_to_regression;
      Alcotest.test_case "counterexamples confirmed on all engines" `Quick
        test_counterexamples_confirmed_on_all_engines;
      Alcotest.test_case "Equiv.relate closes Analysis.relate gap" `Quick
        test_relate_coverage_gap;
      Alcotest.test_case "decision tree reorders via Equiv.relate" `Quick
        test_decision_reorders_via_equiv;
      Alcotest.test_case "solve synthesizes satisfying packets" `Quick
        test_solve_synthesizes_satisfying_packets;
      Alcotest.test_case "solve detects unsatisfiable conditions" `Quick
        test_solve_detects_unsat;
      Alcotest.test_case "pfdev certifies installs" `Quick test_pfdev_certify;
    ] )
