open Pf_filter
module Packet = Pf_pkt.Packet

(* {1 Encoding roundtrips} *)

let test_op_codes () =
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Printf.sprintf "op %s roundtrips" (Op.name op))
        true
        (Op.of_code (Op.code op) = Some op && Op.of_name (Op.name op) = Some op))
    Op.all;
  Alcotest.(check (option reject)) "code 14 unused" None
    (Option.map (fun _ -> ()) (Op.of_code 14));
  Alcotest.(check (option reject)) "code 63 unused" None
    (Option.map (fun _ -> ()) (Op.of_code 63))

let test_action_codes () =
  let actions =
    [ Action.Nopush; Action.Pushlit 0; Action.Pushzero; Action.Pushone; Action.Pushffff;
      Action.Pushff00; Action.Push00ff; Action.Pushind; Action.Pushword 0;
      Action.Pushword 42; Action.Pushword Action.max_word_index ]
  in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "action %s roundtrips" (Action.name a))
        true
        (Action.of_code (Action.code a) = Some a))
    actions;
  Alcotest.(check (option reject)) "code 8 unused" None
    (Option.map (fun _ -> ()) (Action.of_code 8))

let test_insn_wire () =
  let i = Insn.make ~op:Op.Cand (Action.Pushlit 35) in
  Alcotest.(check (list int)) "pushlit|cand 35 encodes to two words"
    [ (10 lsl 10) lor 1; 35 ] (Insn.encode i);
  (match Insn.decode (Insn.encode i) with
  | Ok (i', []) -> Alcotest.(check bool) "decode back" true (Insn.equal i i')
  | Ok _ | Error _ -> Alcotest.fail "decode failed");
  match Insn.decode [ (10 lsl 10) lor 1 ] with
  | Error Insn.Truncated_literal -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected truncated literal"

let test_insn_text () =
  let cases =
    [ "pushword+8"; "pushlit cand 35"; "pushzero cand"; "pushword+1 eq"; "nop";
      "and"; "pushlit 100"; "pushind add" ]
  in
  List.iter
    (fun s ->
      match Insn.of_string s with
      | Ok i -> Alcotest.(check string) ("text roundtrip " ^ s) s (Insn.to_string i)
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    cases;
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Insn.of_string "pushwibble"))

let test_program_wire () =
  let p = Predicates.fig_3_9 in
  Alcotest.(check int) "fig 3-9 length 8 code words" 8 (Program.code_words p);
  Alcotest.(check int) "fig 3-9 priority 10" 10 (Program.priority p);
  let words = Program.encode p in
  Alcotest.(check int) "header priority" 10 (List.nth words 0);
  Alcotest.(check int) "header length" 8 (List.nth words 1);
  match Program.decode words with
  | Ok p' -> Alcotest.(check bool) "decode = original" true (Program.equal p p')
  | Error e -> Alcotest.fail (Format.asprintf "%a" Program.pp_decode_error e)

let test_program_wire_errors () =
  Alcotest.(check bool) "missing header" true
    (match Program.decode [ 1 ] with Error Program.Missing_header -> true | _ -> false);
  Alcotest.(check bool) "length mismatch" true
    (match Program.decode [ 0; 5; 1; 2 ] with
    | Error (Program.Length_mismatch _) -> true
    | _ -> false)

let test_program_text () =
  let p = Predicates.fig_3_8 in
  match Program.of_string (Program.to_string p) with
  | Ok p' -> Alcotest.(check bool) "text roundtrip" true (Program.equal p p')
  | Error e -> Alcotest.fail e

let test_program_text_comments () =
  match Program.of_string "# a filter\npriority 3\npushword+1 # type word\npushlit eq 2\n" with
  | Ok p ->
    Alcotest.(check int) "priority" 3 (Program.priority p);
    Alcotest.(check int) "insns" 2 (Program.insn_count p)
  | Error e -> Alcotest.fail e

(* {1 The paper's example filters (figures 3-8 and 3-9)} *)

let accepts p frame = Interp.accepts p frame

let test_fig_3_8 () =
  let frame ptype etype = Testutil.pup_frame ~ptype ~etype () in
  Alcotest.(check bool) "accepts PupType 1" true (accepts Predicates.fig_3_8 (frame 1 2));
  Alcotest.(check bool) "accepts PupType 100" true
    (accepts Predicates.fig_3_8 (frame 100 2));
  Alcotest.(check bool) "rejects PupType 0" false (accepts Predicates.fig_3_8 (frame 0 2));
  Alcotest.(check bool) "rejects PupType 101" false
    (accepts Predicates.fig_3_8 (frame 101 2));
  Alcotest.(check bool) "rejects non-Pup ethertype" false
    (accepts Predicates.fig_3_8 (frame 50 3));
  (* The HopCount (high byte of word 3) must not disturb the type test. *)
  let hop_frame =
    Testutil.pup_frame ~ptype:50 () |> Packet.to_bytes
    |> fun b ->
    Bytes.set_uint8 b 6 7;
    Packet.of_bytes b
  in
  Alcotest.(check bool) "masks out HopCount" true (accepts Predicates.fig_3_8 hop_frame)

let test_fig_3_9 () =
  let outcome frame = Interp.run Predicates.fig_3_9 frame in
  let good = Testutil.pup_frame ~dst_socket:35l () in
  let bad_socket = Testutil.pup_frame ~dst_socket:36l () in
  let bad_type = Testutil.pup_frame ~dst_socket:35l ~etype:9 () in
  Alcotest.(check bool) "accepts socket 35" true (outcome good).Interp.accept;
  Alcotest.(check bool) "rejects socket 36" false (outcome bad_socket).Interp.accept;
  (* The whole point of short-circuit operators: a socket mismatch exits
     after the first CAND, i.e. 2 instructions. *)
  Alcotest.(check int) "socket mismatch exits after 2 insns" 2
    (outcome bad_socket).Interp.insns_executed;
  Alcotest.(check int) "full match runs all 6 insns" 6 (outcome good).Interp.insns_executed;
  Alcotest.(check bool) "rejects wrong type" false (outcome bad_type).Interp.accept;
  (* High socket word mismatch exits after 4. *)
  let high_socket = Testutil.pup_frame ~dst_socket:0x10023l () in
  Alcotest.(check int) "high-word mismatch exits after 4" 4
    (outcome high_socket).Interp.insns_executed

(* {1 Interpreter semantics and errors} *)

let run_insns ?semantics insns packet = Interp.run ?semantics (Program.v insns) packet

let test_empty_accepts () =
  Alcotest.(check bool) "empty filter accepts" true
    (accepts (Program.empty ()) (Packet.of_string ""));
  Alcotest.(check bool) "reject_all rejects" false
    (accepts Predicates.reject_all (Testutil.pup_frame ()))

let test_underflow () =
  let o = run_insns [ Insn.make ~op:Op.And Action.Nopush ] (Testutil.pup_frame ()) in
  Alcotest.(check bool) "underflow rejects" false o.Interp.accept;
  Alcotest.(check bool) "underflow reported" true
    (match o.Interp.error with Some (Interp.Stack_underflow _) -> true | _ -> false)

let test_overflow () =
  let pushes = List.init (Interp.stack_size + 1) (fun _ -> Insn.make Action.Pushone) in
  let o = run_insns pushes (Testutil.pup_frame ()) in
  Alcotest.(check bool) "overflow rejects" false o.Interp.accept;
  Alcotest.(check bool) "overflow reported" true
    (match o.Interp.error with Some (Interp.Stack_overflow _) -> true | _ -> false)

let test_bad_offset () =
  let o = run_insns [ Insn.make (Action.Pushword 500) ] (Testutil.pup_frame ()) in
  Alcotest.(check bool) "out-of-packet push rejects" false o.Interp.accept;
  Alcotest.(check bool) "offset error reported" true
    (match o.Interp.error with Some (Interp.Bad_word_offset _) -> true | _ -> false)

let test_div_by_zero () =
  let insns = [ Insn.make Action.Pushone; Insn.make ~op:Op.Div Action.Pushzero ] in
  let o = run_insns insns (Testutil.pup_frame ()) in
  Alcotest.(check bool) "div by zero rejects" false o.Interp.accept;
  Alcotest.(check bool) "fault reported" true
    (match o.Interp.error with Some (Interp.Division_by_zero _) -> true | _ -> false)

let test_short_circuit_early_accept_short_packet () =
  (* A COR that fires before an out-of-range push must accept, in all three
     evaluators (the subtlety Fast handles with its per-push fallback). *)
  let insns =
    [ Insn.make (Action.Pushword 0);
      Insn.make ~op:Op.Cor (Action.Pushlit 0xAABB);
      Insn.make (Action.Pushword 100);
    ]
  in
  let p = Program.v insns in
  let packet = Packet.of_words [ 0xAABB; 0 ] in
  Alcotest.(check bool) "interp accepts" true (Interp.accepts p packet);
  let v = Validate.check_exn p in
  Alcotest.(check bool) "fast accepts" true (Fast.run (Fast.compile v) packet);
  Alcotest.(check bool) "closure accepts" true (Closure.run (Closure.compile v) packet)

let test_bsd_semantics () =
  (* Figures 3-8/3-9 mean the same under both published short-circuit
     semantics. *)
  List.iter
    (fun frame ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "paper = bsd" (Interp.accepts ~semantics:`Paper p frame)
            (Interp.accepts ~semantics:`Bsd p frame))
        [ Predicates.fig_3_8; Predicates.fig_3_9 ])
    [ Testutil.pup_frame (); Testutil.pup_frame ~dst_socket:36l ();
      Testutil.pup_frame ~ptype:0 (); Testutil.pup_frame ~etype:5 () ]

let test_arith_extensions () =
  (* (3 + 4) * 2 = 14; 14 lsr 1 = 7; 7 == 7 *)
  let insns =
    [ Insn.make (Action.Pushlit 3);
      Insn.make ~op:Op.Add (Action.Pushlit 4);
      Insn.make ~op:Op.Mul (Action.Pushlit 2);
      Insn.make ~op:Op.Rsh Action.Pushone;
      Insn.make ~op:Op.Eq (Action.Pushlit 7);
    ]
  in
  let o = run_insns insns (Packet.of_string "") in
  Alcotest.(check bool) "arithmetic chain" true o.Interp.accept

let test_pushind () =
  (* packet words: [2; 7; 9]; pushind of word0 (=2) pushes word2 (=9). *)
  let packet = Packet.of_words [ 2; 7; 9 ] in
  let insns =
    [ Insn.make (Action.Pushword 0);
      Insn.make Action.Pushind;
      Insn.make ~op:Op.Eq (Action.Pushlit 9);
    ]
  in
  Alcotest.(check bool) "indirect push" true (run_insns insns packet).Interp.accept;
  (* Index beyond the packet rejects. *)
  let oob = Packet.of_words [ 5; 0 ] in
  let o = run_insns insns oob in
  Alcotest.(check bool) "indirect oob rejects" false o.Interp.accept

(* {1 Validation} *)

let test_validate_catches_underflow () =
  let p = Program.v [ Insn.make ~op:Op.And Action.Pushone ] in
  Alcotest.(check bool) "static underflow" true
    (match Validate.check p with Error (Validate.Static_underflow _) -> true | _ -> false)

let test_validate_min_words () =
  let v = Validate.check_exn Predicates.fig_3_9 in
  Alcotest.(check int) "min packet words = 9" 9 v.Validate.min_packet_words;
  Alcotest.(check bool) "no extensions" false v.Validate.has_indirect

let test_validate_too_long () =
  let insns = List.init 130 (fun _ -> Insn.make (Action.Pushlit 1)) in
  Alcotest.(check bool) "260 code words too long" true
    (match Validate.check (Program.v insns) with
    | Error (Validate.Program_too_long _) -> true
    | _ -> false)

let test_validate_all_errors_minimal () =
  (* One minimal program per error constructor, with the exact payload each
     carries. Program_too_long: 128 Pushlits are 256 code words, one over the
     255 limit. *)
  (match Validate.check (Program.v (List.init 128 (fun _ -> Insn.make (Action.Pushlit 1)))) with
  | Error (Validate.Program_too_long { code_words }) ->
    Alcotest.(check int) "too_long code words" 256 code_words
  | _ -> Alcotest.fail "expected Program_too_long");
  (* Static_underflow: an operator needing two words finds an empty stack. *)
  (match Validate.check (Program.v [ Insn.make ~op:Op.Eq Action.Nopush ]) with
  | Error (Validate.Static_underflow { pc; depth }) ->
    Alcotest.(check (pair int int)) "underflow at pc 0, depth 0" (0, 0) (pc, depth)
  | _ -> Alcotest.fail "expected Static_underflow");
  (* Static_overflow: one push more than the 32-word stack holds. *)
  (match
     Validate.check
       (Program.v (List.init (Interp.stack_size + 1) (fun _ -> Insn.make Action.Pushzero)))
   with
  | Error (Validate.Static_overflow { pc }) ->
    Alcotest.(check int) "overflow at the 33rd push" Interp.stack_size pc
  | _ -> Alcotest.fail "expected Static_overflow");
  (* Word_offset_unencodable: the first offset past the 10-bit action field. *)
  (match
     Validate.check (Program.v [ Insn.make (Action.Pushword (Action.max_word_index + 1)) ])
   with
  | Error (Validate.Word_offset_unencodable { pc; index }) ->
    Alcotest.(check (pair int int)) "unencodable offset" (0, Action.max_word_index + 1)
      (pc, index)
  | _ -> Alcotest.fail "expected Word_offset_unencodable")

(* {1 Equivalence properties: interp = fast = closure} *)

let arb_program_packet = Testutil.arb_program_packet

let prop_fast_equals_interp =
  QCheck.Test.make ~name:"fast interpreter = checked interpreter" ~count:1000
    arb_program_packet
    (fun (insns, packet) ->
      let p = Program.v insns in
      match Validate.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok v ->
        let checked = Interp.run p packet in
        let fast_accept, fast_count = Fast.run_counted (Fast.compile v) packet in
        checked.Interp.accept = fast_accept
        && checked.Interp.insns_executed = fast_count)

let prop_closure_equals_interp =
  QCheck.Test.make ~name:"closure compiler = checked interpreter" ~count:1000
    arb_program_packet
    (fun (insns, packet) ->
      let p = Program.v insns in
      match Validate.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok v -> Interp.accepts p packet = Closure.run (Closure.compile v) packet)

let prop_program_wire_roundtrip =
  QCheck.Test.make ~name:"program encode/decode roundtrip" ~count:500
    arb_program_packet
    (fun (insns, _) ->
      let p = Program.v ~priority:7 insns in
      match Program.decode (Program.encode p) with
      | Ok p' -> Program.equal p p'
      | Error _ -> false)

let prop_program_text_roundtrip =
  QCheck.Test.make ~name:"program text roundtrip" ~count:300 arb_program_packet
    (fun (insns, _) ->
      let p = Program.v ~priority:3 insns in
      match Program.of_string (Program.to_string p) with
      | Ok p' -> Program.equal p p'
      | Error _ -> false)

let prop_validated_never_faults_on_stack =
  QCheck.Test.make ~name:"validated programs never fault on stack bounds" ~count:1000
    arb_program_packet
    (fun (insns, packet) ->
      let p = Program.v insns in
      match Validate.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ -> (
        match (Interp.run p packet).Interp.error with
        | Some (Interp.Stack_underflow _ | Interp.Stack_overflow _) -> false
        | Some (Interp.Bad_word_offset _ | Interp.Division_by_zero _) | None -> true))

let suite =
  ( "filter",
    [
      Alcotest.test_case "op codes" `Quick test_op_codes;
      Alcotest.test_case "action codes" `Quick test_action_codes;
      Alcotest.test_case "insn wire format" `Quick test_insn_wire;
      Alcotest.test_case "insn text format" `Quick test_insn_text;
      Alcotest.test_case "program wire format" `Quick test_program_wire;
      Alcotest.test_case "program wire errors" `Quick test_program_wire_errors;
      Alcotest.test_case "program text format" `Quick test_program_text;
      Alcotest.test_case "program text comments" `Quick test_program_text_comments;
      Alcotest.test_case "figure 3-8" `Quick test_fig_3_8;
      Alcotest.test_case "figure 3-9 short circuits" `Quick test_fig_3_9;
      Alcotest.test_case "empty filter accepts" `Quick test_empty_accepts;
      Alcotest.test_case "stack underflow" `Quick test_underflow;
      Alcotest.test_case "stack overflow" `Quick test_overflow;
      Alcotest.test_case "bad word offset" `Quick test_bad_offset;
      Alcotest.test_case "division by zero" `Quick test_div_by_zero;
      Alcotest.test_case "short circuit before oob" `Quick
        test_short_circuit_early_accept_short_packet;
      Alcotest.test_case "bsd semantics agree on figures" `Quick test_bsd_semantics;
      Alcotest.test_case "arithmetic extensions" `Quick test_arith_extensions;
      Alcotest.test_case "indirect push" `Quick test_pushind;
      Alcotest.test_case "validate underflow" `Quick test_validate_catches_underflow;
      Alcotest.test_case "validate min words" `Quick test_validate_min_words;
      Alcotest.test_case "validate length" `Quick test_validate_too_long;
      Alcotest.test_case "validate all four errors, minimally" `Quick
        test_validate_all_errors_minimal;
      QCheck_alcotest.to_alcotest prop_fast_equals_interp;
      QCheck_alcotest.to_alcotest prop_closure_equals_interp;
      QCheck_alcotest.to_alcotest prop_program_wire_roundtrip;
      QCheck_alcotest.to_alcotest prop_program_text_roundtrip;
      QCheck_alcotest.to_alcotest prop_validated_never_faults_on_stack;
    ] )
