(* Pfsan: the lockset + happens-before concurrency sanitizer, its
   cache-coherence protocol checker, the hardened lock model, the static
   lock-discipline lint, and the sanitizer-driven fuzz campaign. *)

open Pf_kernel
module Engine = Pf_sim.Engine
module Smp = Pf_sim.Smp
module San = Pf_sim.San
module Stats = Pf_sim.Stats
module Addr = Pf_net.Addr
module Frame = Pf_net.Frame
module Gen = Pf_monitor.Traffic.Gen
module Sancase = Pf_fuzz.Sancase

let kind = Alcotest.testable (Fmt.of_to_string San.kind_name) ( = )

let kinds_of san =
  List.map (fun (r : San.report) -> r.San.kind) (San.reports san)

(* {1 The Eraser lockset state machine} *)

let test_lockset_clean () =
  let san = San.create ~ncpus:2 () in
  let r = San.register san ~name:"r" ~discipline:(San.Guarded_by "L") in
  San.write san ~cpu:0 r;
  (* disciplined sharing: every post-sharing access holds L *)
  San.lock_acquired san ~cpu:1 "L";
  San.write san ~cpu:1 r;
  San.lock_released san ~cpu:1 "L";
  San.lock_acquired san ~cpu:0 "L";
  San.read san ~cpu:0 r;
  San.lock_released san ~cpu:0 "L";
  Alcotest.(check (list kind)) "no reports" [] (kinds_of san)

let test_lockset_violation () =
  let san = San.create ~ncpus:2 () in
  let r = San.register san ~name:"shared.counter" ~discipline:(San.Guarded_by "L") in
  San.write san ~cpu:0 r;
  San.lock_acquired san ~cpu:1 "L";
  San.write san ~cpu:1 r;
  San.lock_released san ~cpu:1 "L";
  (* the bug: a bare write once the resource is shared-modified *)
  San.write san ~cpu:0 r;
  match San.reports san with
  | [ rep ] ->
    Alcotest.check kind "kind" San.Lockset_violation rep.San.kind;
    Alcotest.(check string) "resource" "shared.counter" rep.San.resource;
    Alcotest.(check string) "missing lock" "L" rep.San.missing;
    Alcotest.(check bool) "names both cpus" true
      (List.mem 0 rep.San.cpus && List.mem 1 rep.San.cpus)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_lockset_single_cpu_silent () =
  (* Exclusive use never refines the lockset: a 1-CPU kernel can touch a
     Guarded_by resource lock-free forever without a report. *)
  let san = San.create ~ncpus:1 () in
  let r = San.register san ~name:"r" ~discipline:(San.Guarded_by "L") in
  for _ = 1 to 50 do
    San.write san ~cpu:0 r;
    San.read san ~cpu:0 r
  done;
  Alcotest.(check (list kind)) "no reports" [] (kinds_of san)

(* {1 CPU-private and IPI-published disciplines} *)

let test_cpu_private () =
  let san = San.create ~ncpus:4 () in
  let r = San.register san ~name:"percpu.cache" ~discipline:(San.Cpu_private 2) in
  San.write san ~cpu:2 r;
  San.read san ~cpu:2 r;
  Alcotest.(check (list kind)) "owner is free" [] (kinds_of san);
  San.read san ~cpu:0 r;
  match San.reports san with
  | [ rep ] ->
    Alcotest.check kind "kind" San.Cpu_private_violation rep.San.kind;
    Alcotest.(check string) "resource" "percpu.cache" rep.San.resource;
    Alcotest.(check bool) "names the owner" true
      (List.mem 2 rep.San.cpus && List.mem 0 rep.San.cpus)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_hb_unordered_then_ordered () =
  let san = San.create ~ncpus:2 () in
  let r = San.register san ~name:"table" ~discipline:San.Ipi_published in
  San.write san ~cpu:0 r;
  San.read san ~cpu:1 r;
  (match San.reports san with
  | [ rep ] ->
    Alcotest.check kind "kind" San.Unordered_access rep.San.kind;
    Alcotest.(check string) "missing edge" "ipi 0->1" rep.San.missing
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs));
  (* same shape with the publication edge: silent *)
  let san = San.create ~ncpus:2 () in
  let r = San.register san ~name:"table" ~discipline:San.Ipi_published in
  San.write san ~cpu:0 r;
  let m = San.ipi_send san ~src:0 in
  San.ipi_receive san ~dst:1 m;
  San.read san ~cpu:1 r;
  Alcotest.(check (list kind)) "ordered read is clean" [] (kinds_of san)

(* {1 The cache-coherence protocol checker} *)

let test_protocol_stale_hit () =
  let san = San.create ~ncpus:2 () in
  let table = San.register san ~name:"table" ~discipline:San.Ipi_published in
  San.note_store san ~cpu:1 ~key:"flow-a" table;
  San.publish san ~cpu:0 table;
  (* cpu 1 never saw the invalidation: its hit is stale *)
  San.note_hit san ~cpu:1 ~key:"flow-a" table;
  (match San.reports san with
  | [ rep ] ->
    Alcotest.check kind "kind" San.Stale_cache_hit rep.San.kind;
    Alcotest.(check bool) "missing names the invalidation edge" true
      (String.length rep.San.missing > 0
      && String.sub rep.San.missing 0 12 = "invalidation")
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs));
  (* the protocol done right: publish, then sync before the next probe *)
  let san = San.create ~ncpus:2 () in
  let table = San.register san ~name:"table" ~discipline:San.Ipi_published in
  San.note_store san ~cpu:1 ~key:"flow-a" table;
  San.publish san ~cpu:0 table;
  San.sync san ~cpu:1 table;
  San.note_hit san ~cpu:1 ~key:"flow-a" table;
  San.note_store san ~cpu:1 ~key:"flow-a" table;
  San.note_hit san ~cpu:1 ~key:"flow-a" table;
  Alcotest.(check (list kind)) "synced cache is clean" [] (kinds_of san)

(* {1 The hardened lock model} *)

let mk_smp ncpus =
  let eng = Engine.create () in
  let smp = Smp.create ~ncpus eng Pf_sim.Costs.microvax_ii in
  (eng, smp)

let test_lock_double_release () =
  let _, smp = mk_smp 2 in
  let san = San.create ~ncpus:2 () in
  Smp.set_san smp san;
  let l = Smp.Lock.create ~name:"l" smp in
  Smp.Lock.release l ~cpu:0;
  (match Smp.Lock.misuses l with
  | [ Smp.Lock.Double_release 0 ] -> ()
  | _ -> Alcotest.fail "expected one double-release misuse");
  Alcotest.(check (list kind)) "reported to the sanitizer" [ San.Lock_misuse ]
    (kinds_of san)

let test_lock_release_by_non_owner () =
  let _, smp = mk_smp 2 in
  let san = San.create ~ncpus:2 () in
  Smp.set_san smp san;
  let l = Smp.Lock.create ~name:"l" smp in
  ignore (Smp.Lock.acquire ~cpu:0 l ~start:0 ~hold:10 : Pf_sim.Time.t);
  Smp.Lock.release l ~cpu:1;
  (match Smp.Lock.misuses l with
  | [ Smp.Lock.Release_by_non_owner { cpu = 1; owner = 0 } ] -> ()
  | _ -> Alcotest.fail "expected one release-by-non-owner misuse");
  (* the flagged release still closes the window: no follow-on reports *)
  ignore (Smp.Lock.acquire ~cpu:1 l ~start:100 ~hold:10 : Pf_sim.Time.t);
  Smp.Lock.release l ~cpu:1;
  Alcotest.(check int) "no new misuses" 1 (List.length (Smp.Lock.misuses l))

let test_lock_reentrant_acquire () =
  let _, smp = mk_smp 2 in
  let san = San.create ~ncpus:2 () in
  Smp.set_san smp san;
  let l = Smp.Lock.create ~name:"l" smp in
  ignore (Smp.Lock.acquire ~cpu:0 l ~start:0 ~hold:10 : Pf_sim.Time.t);
  ignore (Smp.Lock.acquire ~cpu:0 l ~start:5 ~hold:10 : Pf_sim.Time.t);
  (match Smp.Lock.misuses l with
  | [ Smp.Lock.Reentrant_acquire 0 ] -> ()
  | _ -> Alcotest.fail "expected one reentrant-acquire misuse");
  (* misuse detection never perturbs the time accounting *)
  Alcotest.(check int) "acquisitions counted" 2 (Smp.Lock.acquisitions l);
  Alcotest.(check int) "second acquire spun" 1 (Smp.Lock.contended l)

(* {1 ipi_broadcast: ascending CPU-id retire order, at every ncpus} *)

let test_ipi_broadcast_order () =
  List.iter
    (fun ncpus ->
      List.iter
        (fun src ->
          let eng, smp = mk_smp ncpus in
          let order = ref [] in
          Smp.ipi_broadcast smp ~src (fun dst -> order := dst :: !order);
          Engine.run eng;
          let expected =
            List.filter (fun k -> k <> src) (List.init ncpus Fun.id)
          in
          Alcotest.(check (list int))
            (Printf.sprintf "ncpus=%d src=%d" ncpus src)
            expected (List.rev !order))
        [ 0; ncpus - 1 ])
    [ 1; 2; 4; 8 ]

(* {1 Pfdev.steer: a pure function of the flow-cache key bytes} *)

let test_steer_pure_function_of_key () =
  let build seed =
    let eng = Engine.create () in
    let link = Pf_net.Link.create eng Frame.Dix10 ~rate_mbit:10. () in
    let h =
      Host.create ~costs:Pf_sim.Costs.microvax_ii ~ncpus:4 link ~name:"rx"
        ~addr:(Addr.eth_host 2)
    in
    let pf = Host.pf h in
    let gen = Gen.make ~seed ~flows:16 ~skew:Gen.Uniform () in
    for i = 15 downto 0 do
      let p = Pfdev.open_port pf in
      (match Pfdev.set_filter p (Gen.filter (Gen.flow gen i)) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%a" Pfdev.pp_install_error e)
    done;
    Engine.run eng;
    (pf, gen)
  in
  List.iter
    (fun seed ->
      let pf, gen = build seed in
      let pf', _ = build seed in
      List.iter
        (fun i ->
          let frame = Gen.frame (Gen.flow gen i) in
          let c = Pfdev.steer pf frame in
          Alcotest.(check bool) "valid cpu" true (c >= 0 && c < 4);
          (* deterministic: repeated calls and an identically-configured
             device agree *)
          Alcotest.(check int) "stable" c (Pfdev.steer pf frame);
          Alcotest.(check int) "device-independent" c (Pfdev.steer pf' frame);
          (* payload bytes are outside every filter's read set, so they
             are outside the flow-cache key: mutating them cannot move
             the flow to another CPU *)
          let b = Pf_pkt.Packet.to_bytes frame in
          for j = Bytes.length b - 16 to Bytes.length b - 1 do
            Bytes.set b j (Char.chr ((Char.code (Bytes.get b j) + 1 + j) land 0xff))
          done;
          Alcotest.(check int) "key bytes only" c
            (Pfdev.steer pf (Pf_pkt.Packet.of_bytes b)))
        [ 0; 3; 7; 15 ])
    [ 0x5EED; 0xD373 ]

(* {1 The clean kernel is silent at every CPU count} *)

let clean_case ~ncpus ~packets =
  { Sancase.index = 0; ncpus; flows = 16; packets; tseed = 0xBEEF }

let test_clean_kernel_all_ncpus () =
  List.iter
    (fun ncpus ->
      (* 300 packets x2 per run: past the 256-demux reorder threshold, so
         the scenario also crosses maybe_reorder's publication path *)
      let reports = Sancase.run_scenario (clean_case ~ncpus ~packets:300) in
      Alcotest.(check int)
        (Printf.sprintf "ncpus=%d" ncpus)
        0 (List.length reports))
    [ 1; 2; 4; 8 ]

(* {1 The three seeded mutants, pinned to their shrunk witnesses} *)

let witness ~ncpus ~flows ~packets =
  { Sancase.index = 0; ncpus; flows; packets; tseed = 0x9245f2 }

let test_mutant_skip_install () =
  (* one CPU, one flow, one packet per pass: the minimal stale-hit *)
  let reports =
    Sancase.run_scenario ~mutant:Sancase.Skip_install_invalidation
      (witness ~ncpus:1 ~flows:1 ~packets:1)
  in
  match
    List.find_opt
      (fun (r : San.report) -> r.San.kind = San.Stale_cache_hit)
      reports
  with
  | Some rep ->
    Alcotest.(check string) "resource" "pfdev.flow_cache.cpu0" rep.San.resource;
    Alcotest.(check (list int)) "cpus" [ 0 ] rep.San.cpus;
    Alcotest.(check string) "missing edge"
      "invalidation ipi 0->0 for epoch 3" rep.San.missing
  | None -> Alcotest.fail "skip-install-invalidation escaped the sanitizer"

let test_mutant_skip_remote () =
  (* two CPUs, one flow, one packet per pass *)
  let reports =
    Sancase.run_scenario ~mutant:Sancase.Skip_remote_invalidation
      (witness ~ncpus:2 ~flows:1 ~packets:1)
  in
  (match
     List.find_opt
       (fun (r : San.report) -> r.San.kind = San.Stale_cache_hit)
       reports
   with
  | Some rep ->
    Alcotest.(check string) "resource" "pfdev.flow_cache.cpu1" rep.San.resource;
    Alcotest.(check (list int)) "cpus" [ 0; 1 ] rep.San.cpus;
    Alcotest.(check string) "missing edge"
      "invalidation ipi 0->1 for epoch 3" rep.San.missing
  | None -> Alcotest.fail "no stale hit from skip-remote-invalidation");
  match
    List.find_opt
      (fun (r : San.report) -> r.San.kind = San.Unordered_access)
      reports
  with
  | Some rep ->
    Alcotest.(check string) "resource" "pfdev.port_table" rep.San.resource;
    Alcotest.(check string) "missing edge" "ipi 0->1" rep.San.missing
  | None -> Alcotest.fail "no unordered table read from skip-remote-invalidation"

let test_mutant_skip_delivery_lock () =
  let reports =
    Sancase.run_scenario ~mutant:Sancase.Skip_delivery_lock
      (witness ~ncpus:2 ~flows:3 ~packets:3)
  in
  match
    List.find_opt
      (fun (r : San.report) -> r.San.kind = San.Lockset_violation)
      reports
  with
  | Some rep ->
    Alcotest.(check string) "resource" "pfdev.delivery_queue" rep.San.resource;
    Alcotest.(check string) "missing lock" "delivery_lock" rep.San.missing;
    Alcotest.(check (list int)) "cpus" [ 0; 1 ] rep.San.cpus
  | None -> Alcotest.fail "skip-delivery-lock escaped the sanitizer"

(* {1 The fuzz campaign: clean stays silent, mutants are caught + shrunk} *)

let test_campaign_clean () =
  let stats = Sancase.run ~seed:7 ~iters:6 () in
  Alcotest.(check int) "cases" 6 stats.Sancase.cases;
  Alcotest.(check int) "no reported cases" 0 stats.Sancase.reported_cases;
  Alcotest.(check int) "no failures" 0 (List.length stats.Sancase.failures)

let test_campaign_catches_mutants () =
  List.iter
    (fun mutant ->
      let name = Sancase.mutant_name mutant in
      let stats = Sancase.run ~mutant ~seed:7 ~iters:4 ~max_failures:1 () in
      match stats.Sancase.failures with
      | [ f ] ->
        Alcotest.(check bool) (name ^ " reports survive shrinking") true
          (f.Sancase.shrunk_reports <> []);
        let c = f.Sancase.case and s = f.Sancase.shrunk in
        Alcotest.(check bool) (name ^ " shrunk is no larger") true
          (s.Sancase.ncpus <= c.Sancase.ncpus
          && s.Sancase.flows <= c.Sancase.flows
          && s.Sancase.packets <= c.Sancase.packets);
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) (name ^ " repro names the mutant") true
          (contains f.Sancase.repro name)
      | fs ->
        Alcotest.failf "%s: expected exactly one catch, got %d" name
          (List.length fs))
    Sancase.all_mutants

(* {1 For_testing.skip_delivery_lock restores cleanly} *)

let test_skip_delivery_lock_hook_restores () =
  Alcotest.(check bool) "flag starts clear" false
    !Pfdev.For_testing.skip_delivery_lock;
  ignore
    (Sancase.run_scenario ~mutant:Sancase.Skip_delivery_lock
       (witness ~ncpus:2 ~flows:3 ~packets:3)
      : San.report list);
  Alcotest.(check bool) "flag restored" false
    !Pfdev.For_testing.skip_delivery_lock;
  (* and the very next clean run is silent: no state leaks between runs *)
  let reports = Sancase.run_scenario (clean_case ~ncpus:2 ~packets:50) in
  Alcotest.(check int) "clean after mutant" 0 (List.length reports)

(* {1 Attaching the sanitizer never changes kernel behavior} *)

let scenario_counters ~with_san =
  let eng = Engine.create () in
  let link = Pf_net.Link.create eng Frame.Dix10 ~rate_mbit:10. () in
  let h =
    Host.create ~costs:Pf_sim.Costs.microvax_ii ~ncpus:4 link ~name:"rx"
      ~addr:(Addr.eth_host 2)
  in
  let san =
    if with_san then begin
      let s = San.create ~stats:(Host.stats h) ~ncpus:4 () in
      Host.attach_san h s;
      Some s
    end
    else None
  in
  let pf = Host.pf h in
  let gen = Gen.make ~seed:0xD373 ~flows:24 ~skew:(Gen.Zipf 1.1) () in
  for i = 23 downto 0 do
    let p = Pfdev.open_port pf in
    (match Pfdev.set_filter p (Gen.filter (Gen.flow gen i)) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%a" Pfdev.pp_install_error e);
    Pfdev.set_queue_limit p 1_000
  done;
  Engine.run eng;
  List.iter (fun f -> Host.inject h (Gen.frame f)) (Gen.sequence gen 400);
  Engine.run eng;
  (Host.stats h, san)

let test_attach_changes_no_verdicts () =
  let bare, _ = scenario_counters ~with_san:false in
  let sanned, san = scenario_counters ~with_san:true in
  List.iter
    (fun key ->
      Alcotest.(check int) key (Stats.get bare key) (Stats.get sanned key))
    [ "host.inject"; "host.rx"; "pf.accepted"; "pf.smp.lock_acquire" ];
  (* and the pf.san.* counters landed in the host's stats *)
  let san = Option.get san in
  Alcotest.(check bool) "accesses counted" true
    (Stats.get sanned "pf.san.accesses" > 0);
  Alcotest.(check int) "stats mirror the checker"
    (List.assoc "pf.san.accesses" (San.counters san))
    (Stats.get sanned "pf.san.accesses");
  Alcotest.(check int) "zero reports" 0 (Stats.get sanned "pf.san.reports")

(* {1 The static lock-discipline lint} *)

let test_lint_kernel_registry_clean () =
  List.iter
    (fun ncpus ->
      let eng = Engine.create () in
      let link = Pf_net.Link.create eng Frame.Dix10 ~rate_mbit:10. () in
      let h =
        Host.create ~costs:Pf_sim.Costs.microvax_ii ~ncpus link ~name:"rx"
          ~addr:(Addr.eth_host 2)
      in
      let san = San.create ~ncpus () in
      Host.attach_san h san;
      Alcotest.(check int)
        (Printf.sprintf "ncpus=%d" ncpus)
        0
        (List.length (San.Lint.run san)))
    [ 1; 2; 4; 8 ]

let test_lint_findings () =
  let san = San.create ~ncpus:2 () in
  (* undeclared sharing: a cpu-0-private object with a cpu-1 access site *)
  let priv = San.register san ~name:"percpu" ~discipline:(San.Cpu_private 0) in
  San.declare_site san ~site:"remote_peek" ~ctx:(San.On_cpu 1) ~locks:[]
    ~rw:`Write priv;
  (* inconsistent guard: one site takes the declared lock, one does not *)
  let shared = San.register san ~name:"table" ~discipline:(San.Guarded_by "giant") in
  San.declare_lock san "giant";
  San.declare_site san ~site:"locked_update" ~ctx:(San.On_cpu 0)
    ~locks:[ "giant" ] ~rw:`Write shared;
  San.declare_site san ~site:"lockless_read" ~ctx:(San.On_cpu 1) ~locks:[]
    ~rw:`Read shared;
  (* lock-order inversion: a site acquiring b-then-a against a < b *)
  San.declare_lock san "a";
  San.declare_lock san "b";
  San.declare_lock_order san ~before:"a" ~after:"b";
  let nested = San.register san ~name:"nested" ~discipline:(San.Guarded_by "b") in
  San.declare_site san ~site:"inverted_nesting" ~ctx:San.Boot
    ~locks:[ "b"; "a" ] ~rw:`Write nested;
  let findings = San.Lint.run san in
  let kinds =
    List.sort_uniq compare
      (List.map (fun (f : San.Lint.finding) -> f.San.Lint.kind) findings)
  in
  Alcotest.(check int) "three findings" 3 (List.length findings);
  Alcotest.(check bool) "one of each kind" true
    (kinds = [ `Undeclared_sharing; `Inconsistent_guard; `Lock_order_inversion ]
    || List.length kinds = 3)

let suite =
  ( "san",
    [
      Alcotest.test_case "lockset: disciplined sharing is clean" `Quick
        test_lockset_clean;
      Alcotest.test_case "lockset: empty intersection reports" `Quick
        test_lockset_violation;
      Alcotest.test_case "lockset: exclusive use never reports" `Quick
        test_lockset_single_cpu_silent;
      Alcotest.test_case "cpu-private: foreign access reports" `Quick
        test_cpu_private;
      Alcotest.test_case "happens-before: ipi edge orders the read" `Quick
        test_hb_unordered_then_ordered;
      Alcotest.test_case "protocol: stale hit vs synced cache" `Quick
        test_protocol_stale_hit;
      Alcotest.test_case "lock: double release" `Quick test_lock_double_release;
      Alcotest.test_case "lock: release by non-owner" `Quick
        test_lock_release_by_non_owner;
      Alcotest.test_case "lock: reentrant acquire" `Quick
        test_lock_reentrant_acquire;
      Alcotest.test_case "ipi_broadcast retires in ascending cpu order" `Quick
        test_ipi_broadcast_order;
      Alcotest.test_case "steer is a pure function of the key bytes" `Quick
        test_steer_pure_function_of_key;
      Alcotest.test_case "clean kernel: zero reports at 1/2/4/8 cpus" `Slow
        test_clean_kernel_all_ncpus;
      Alcotest.test_case "mutant: skip-install-invalidation caught" `Quick
        test_mutant_skip_install;
      Alcotest.test_case "mutant: skip-remote-invalidation caught" `Quick
        test_mutant_skip_remote;
      Alcotest.test_case "mutant: skip-delivery-lock caught" `Quick
        test_mutant_skip_delivery_lock;
      Alcotest.test_case "campaign: clean kernel stays silent" `Slow
        test_campaign_clean;
      Alcotest.test_case "campaign: every mutant caught and shrunk" `Slow
        test_campaign_catches_mutants;
      Alcotest.test_case "skip_delivery_lock hook restores" `Quick
        test_skip_delivery_lock_hook_restores;
      Alcotest.test_case "attaching changes no verdicts or counters" `Quick
        test_attach_changes_no_verdicts;
      Alcotest.test_case "lint: kernel registry is clean" `Quick
        test_lint_kernel_registry_clean;
      Alcotest.test_case "lint: all three finding kinds" `Quick
        test_lint_findings;
    ] )
