(* The installation-time abstract interpreter: known-filter facts, the
   consumers that act on them (Fast/Closure checkless runs, Peephole dead
   code, Decision cost ordering, Pfdev admission control and relations),
   the satellite assembler/optimizer properties, and the seeded unsound
   interval mutant the differential oracle must catch. *)

open Pf_filter
module Packet = Pf_pkt.Packet
module Gen = Pf_fuzz.Gen
module Oracle = Pf_fuzz.Oracle
module Runner = Pf_fuzz.Runner
module Pfdev = Pf_kernel.Pfdev
module Host = Pf_kernel.Host

let i ?(op = Op.Nop) action = Insn.make ~op action

let validate_exn p =
  match Validate.check p with
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpectedly invalid: %a" Validate.pp_error e

let analyze p = Analysis.analyze (validate_exn p)

let verdict = Alcotest.testable Analysis.pp_verdict ( = )
let relation = Alcotest.testable Analysis.pp_relation ( = )

(* {1 Facts about known filters} *)

let test_known_filters () =
  let a = analyze Predicates.accept_all in
  Alcotest.check verdict "empty filter" Analysis.Always_accept a.Analysis.verdict;
  Alcotest.(check int) "empty cost" 0 a.Analysis.cost_bound;
  let r = analyze Predicates.reject_all in
  Alcotest.check verdict "pushzero" Analysis.Always_reject r.Analysis.verdict;
  let f38 = analyze Predicates.fig_3_8 in
  Alcotest.check verdict "fig 3-8" Analysis.Depends_on_packet f38.Analysis.verdict;
  Alcotest.(check bool) "fig 3-8 division impossible" true
    (f38.Analysis.div_by_zero = Analysis.Impossible);
  let f39 = analyze Predicates.fig_3_9 in
  Alcotest.check verdict "fig 3-9" Analysis.Depends_on_packet f39.Analysis.verdict;
  (* Figure 3-9 touches words 8, 7 and 1: every access is covered at 9
     words, and — since the CAND exits are all rejections — any shorter
     packet is certainly rejected. *)
  Alcotest.(check int) "fig 3-9 safe bound" 9 f39.Analysis.safe_packet_words;
  Alcotest.(check int) "fig 3-9 certain-reject bound" 9 f39.Analysis.min_packet_words;
  Alcotest.(check (option int)) "no dead code" None (Analysis.dead_after f39)

let test_cost_model () =
  (* The bound is the exact sum over reachable instructions, and a concrete
     run's cost (the executed prefix) can never exceed it. *)
  List.iter
    (fun p ->
      let a = analyze p in
      Alcotest.(check int) "bound = cost of reachable prefix"
        (Analysis.cost_of_prefix p a.Analysis.max_insns)
        a.Analysis.cost_bound;
      let fast = Fast.compile (validate_exn p) in
      let rng = Gen.Rng.make 0xC057 in
      for _ = 1 to 50 do
        let pkt, _ = Gen.packet rng in
        let _, executed = Fast.run_counted fast pkt in
        Alcotest.(check bool) "run cost within bound" true
          (Analysis.cost_of_prefix p executed <= a.Analysis.cost_bound)
      done)
    [ Predicates.fig_3_8; Predicates.fig_3_9; Predicates.udp_dst_port_any_ihl 53 ]

(* {1 Data flow through indirect pushes}

   [udp_dst_port_any_ihl] computes the UDP port offset from the IHL nibble:
   index = ((word 7 >> 8) & 0x0f) * 2 + 8, so every index lies in [8, 38].
   The analysis must prove that bound, and Fast/Closure must use it to skip
   the Pushind dynamic check on packets of >= 39 words. *)

let test_indirect_bound () =
  let p = Predicates.udp_dst_port_any_ihl 53 in
  let a = analyze p in
  Alcotest.(check (option int)) "index bound follows the nibble" (Some 39)
    a.Analysis.ind_bound;
  Alcotest.(check int) "checkless threshold" 39 a.Analysis.safe_packet_words;
  (* The fixed-offset accesses (words 6, 11) plus the smallest possible
     indirect index (IHL 0 -> index 8 needs 12... the deepest constant is
     word 11, and index >= 8 needs 9; the reject bound tracks the largest
     certain requirement). *)
  Alcotest.(check int) "certain-reject bound" 12 a.Analysis.min_packet_words;
  Alcotest.(check bool) "division-free" true
    (a.Analysis.div_by_zero = Analysis.Impossible)

let test_engines_skip_checks () =
  let p = Predicates.udp_dst_port_any_ihl 53 in
  let v = validate_exn p in
  let fast = Fast.compile v in
  let long = Packet.of_words (List.init 40 (fun w -> w)) in
  let short = Packet.of_words [ 0x0800; 2; 3 ] in
  Alcotest.(check bool) "long packet runs checkless" true
    (Fast.runs_checkless fast long);
  Alcotest.(check bool) "short packet keeps checks" false
    (Fast.runs_checkless fast short);
  (* Checkless runs must still agree with the checked interpreter — on
     matching and non-matching long packets alike. *)
  let closure = Closure.compile v in
  let rng = Gen.Rng.make 0x1D1D in
  for _ = 1 to 200 do
    let base, _ = Gen.packet rng in
    let pkt = Packet.concat [ base; Packet.of_words (List.init 40 (fun w -> w)) ] in
    let reference = Interp.accepts p pkt in
    Alcotest.(check bool) "fast checkless" true (Fast.runs_checkless fast pkt);
    Alcotest.(check bool) "fast agrees" reference (Fast.run fast pkt);
    Alcotest.(check bool) "closure agrees" reference (Closure.run closure pkt)
  done

(* {1 Analysis-driven dead-code elimination}

   A CAND fed by a comparison result can never equal 2: the interval
   analysis decides it ([0,1] vs [2,2] are disjoint) where the constant
   folder cannot (the operands come from the packet). Everything after the
   CAND is dead and Peephole now drops it. *)

let dead_tail_program =
  Program.v
    [ i (Action.Pushword 0);
      i ~op:Op.Lt (Action.Pushword 1);
      i ~op:Op.Cand (Action.Pushlit 2);
      i Action.Pushone (* dead *)
    ]

let test_dead_code () =
  let a = analyze dead_tail_program in
  Alcotest.check verdict "always rejects" Analysis.Always_reject a.Analysis.verdict;
  Alcotest.(check (option int)) "dead after the cand" (Some 2)
    (Analysis.dead_after a);
  let opt = Peephole.optimize dead_tail_program in
  Alcotest.(check int) "tail dropped" 3 (Program.insn_count opt);
  let rng = Gen.Rng.make 0xDEAD in
  for _ = 1 to 200 do
    let pkt, _ = Gen.packet rng in
    Alcotest.(check bool) "verdict preserved"
      (Interp.accepts dead_tail_program pkt)
      (Interp.accepts opt pkt)
  done

(* {1 Relations between filters} *)

let test_relations () =
  let v p = validate_exn p in
  let socket n = v (Predicates.pup_dst_socket (Int32.of_int n)) in
  Alcotest.check relation "different sockets never share a packet"
    Analysis.Disjoint
    (Analysis.relate (socket 35) (socket 36));
  Alcotest.check relation "a filter is equivalent to itself" Analysis.Equivalent
    (Analysis.relate (socket 35) (socket 35));
  Alcotest.check relation "figure 3-9 is the socket-35 filter"
    Analysis.Equivalent
    (Analysis.relate (v Predicates.fig_3_9) (socket 35));
  Alcotest.check relation "the empty filter subsumes everything"
    Analysis.Subsumes
    (Analysis.relate (v Predicates.accept_all) (socket 35));
  Alcotest.check relation "reject-all is subsumed by everything"
    Analysis.Subsumed_by
    (Analysis.relate (v Predicates.reject_all) (socket 35));
  (* Adding a guard restricts the accept set. *)
  let base = Program.v [ i (Action.Pushword 1); i ~op:Op.Eq (Action.Pushlit 2) ] in
  let narrower =
    Program.v
      [ i (Action.Pushword 4);
        i ~op:Op.Cand (Action.Pushlit 7);
        i (Action.Pushword 1);
        i ~op:Op.Eq (Action.Pushlit 2)
      ]
  in
  Alcotest.check relation "guard superset is subsumed" Analysis.Subsumed_by
    (Analysis.relate (v narrower) (v base));
  Alcotest.check relation "guard subset subsumes" Analysis.Subsumes
    (Analysis.relate (v base) (v narrower))

(* {1 Decision-tree cost ordering}

   Within one priority level the sequential semantics leaves tie order to
   insertion — but two provably disjoint filters can be swapped freely. The
   tree must run the cheap one first. Filters D and E pin the trie shape
   (the root splits on word 1, the word-1 subtree on word 3), so expensive A
   and cheap B both end up residents evaluated for the test packet. *)

let test_decision_cost_order () =
  let chain pairs last =
    let rec go = function
      | [] -> (
        match last with
        | (w, c) -> [ i (Action.Pushword w); i ~op:Op.Eq (Action.Pushlit c) ])
      | (w, c) :: rest -> i (Action.Pushword w) :: i ~op:Op.Cand (Action.Pushlit c) :: go rest
    in
    Program.v (go pairs)
  in
  let a = chain [ (1, 2); (7, 0) ] (1, 2) (* 3 guard pairs: expensive *) in
  let b = chain [] (7, 5) (* 1 guard pair: cheap, disjoint from [a] on word 7 *) in
  let d = chain [ (1, 2) ] (3, 4) in
  let e = chain [ (1, 2) ] (3, 9) in
  Alcotest.check relation "a and b provably disjoint" Analysis.Disjoint
    (Analysis.relate (validate_exn a) (validate_exn b));
  let tree =
    Decision.build
      (List.map (fun (p, name) -> (validate_exn p, name))
         [ (a, "a"); (b, "b"); (d, "d"); (e, "e") ])
  in
  (* Word 1 = 2 satisfies [a]'s and the residents' shared guard; word 7 = 5
     matches [b] and refutes [a]. Both are candidates; cost order must try
     cheap [b] first and stop there. *)
  let pkt = Packet.of_words [ 0; 2; 0; 0; 0; 0; 0; 5; 0 ] in
  let result, stats = Decision.classify_stats tree pkt in
  Alcotest.(check (option string)) "b accepts" (Some "b") result;
  Alcotest.(check int) "only the cheap filter ran" 1 stats.Decision.filters_run;
  (* And the reorder must never change a verdict: compare against the
     sequential reference on a generated corpus. *)
  let seq = [ (a, "a"); (b, "b"); (d, "d"); (e, "e") ] in
  let sequential pkt =
    List.find_map (fun (p, name) -> if Interp.accepts p pkt then Some name else None) seq
  in
  let rng = Gen.Rng.make 0x0DE0 in
  for _ = 1 to 300 do
    let pkt, _ = Gen.packet rng in
    Alcotest.(check (option string)) "tree = sequential" (sequential pkt)
      (Decision.classify tree pkt)
  done

(* {1 The pseudodevice: admission control, relations, shadowing} *)

let mk_dev () =
  let eng = Pf_sim.Engine.create () in
  let link = Pf_net.Link.create eng Pf_net.Frame.Exp3 ~rate_mbit:3. () in
  let host = Host.create ~costs:Pf_sim.Costs.free link ~name:"h" ~addr:(Pf_net.Addr.exp 1) in
  Host.pf host

let test_pfdev_admission () =
  let dev = mk_dev () in
  let port = Pfdev.open_port dev in
  (match Pfdev.install port Predicates.fig_3_9 with
  | Ok a ->
    Alcotest.check verdict "analysis returned" Analysis.Depends_on_packet
      a.Analysis.verdict;
    Alcotest.(check bool) "analysis recorded on the port" true
      (Pfdev.port_analysis port = Some a)
  | Error e -> Alcotest.failf "install: %a" Pfdev.pp_install_error e);
  (* A device-wide cost ceiling refuses provably expensive filters. *)
  let expensive = Predicates.udp_dst_port_any_ihl 53 in
  let bound = (analyze expensive).Analysis.cost_bound in
  Pfdev.set_cost_limit dev (Some (bound - 1));
  (match Pfdev.install port expensive with
  | Error (Pfdev.Cost_limit_exceeded { bound = b; limit }) ->
    Alcotest.(check int) "reported bound" bound b;
    Alcotest.(check int) "reported limit" (bound - 1) limit
  | Ok _ -> Alcotest.fail "expensive filter admitted past the cost limit"
  | Error e -> Alcotest.failf "wrong error: %a" Pfdev.pp_install_error e);
  Pfdev.set_cost_limit dev None;
  (match Pfdev.install port expensive with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install without limit: %a" Pfdev.pp_install_error e);
  (* Invalid programs surface as [Invalid]. *)
  match Pfdev.install port (Program.v [ i ~op:Op.Eq Action.Nopush ]) with
  | Error (Pfdev.Invalid _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "static underflow not refused"

let test_pfdev_relations_and_shadowing () =
  let dev = mk_dev () in
  let p1 = Pfdev.open_port dev in
  let p2 = Pfdev.open_port dev in
  let p3 = Pfdev.open_port dev in
  let install_exn port p =
    match Pfdev.install port p with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "install: %a" Pfdev.pp_install_error e
  in
  install_exn p1 (Predicates.pup_dst_socket ~priority:5 35l);
  install_exn p2 (Predicates.pup_dst_socket ~priority:5 99l);
  install_exn p3 (Program.with_priority Predicates.accept_all 50);
  let rel a b =
    let find (x, y, r) =
      if (x, y) = (Pfdev.port_id a, Pfdev.port_id b)
         || (x, y) = (Pfdev.port_id b, Pfdev.port_id a)
      then Some r
      else None
    in
    match List.find_map find (Pfdev.filter_relations dev) with
    | Some r -> r
    | None -> Alcotest.fail "pair missing from filter_relations"
  in
  Alcotest.check relation "sockets disjoint" Analysis.Disjoint (rel p1 p2);
  Alcotest.check relation "accept-all subsumes socket 35" Analysis.Subsumes
    (rel p3 p1);
  (* The catch-all at priority 50 starves both socket ports. *)
  let shadowed = Pfdev.shadowed_ports dev in
  let ids = List.map (fun (p, _) -> Pfdev.port_id p) shadowed in
  Alcotest.(check (list int)) "socket ports shadowed"
    [ Pfdev.port_id p1; Pfdev.port_id p2 ]
    (List.sort compare ids);
  List.iter
    (fun (_, by) ->
      Alcotest.(check int) "shadowed by the catch-all" (Pfdev.port_id p3)
        (Pfdev.port_id by))
    shadowed;
  (* copy-all ports pass packets on: no starvation, no report. *)
  Pfdev.set_copy_all p3 true;
  Alcotest.(check (list int)) "copy-all does not shadow" []
    (List.map (fun (p, _) -> Pfdev.port_id p) (Pfdev.shadowed_ports dev))

(* {1 Satellite: Peephole preserves validity and verdict class} *)

let test_peephole_verdict_class () =
  let rng = Gen.Rng.make 0x0C1A in
  for _ = 1 to 400 do
    let pkt, _ = Gen.packet rng in
    let p = Gen.program rng pkt in
    let opt = Peephole.optimize p in
    match Validate.check opt with
    | Error e ->
      Alcotest.failf "optimized program invalid (%a):@.%a" Validate.pp_error e
        Program.pp opt
    | Ok vopt ->
      let before = (Analysis.analyze (validate_exn p)).Analysis.verdict in
      let after = (Analysis.analyze vopt).Analysis.verdict in
      Alcotest.check verdict
        (Format.asprintf "verdict class preserved for@.%a" Program.pp p)
        before after
  done

(* {1 Satellite: assembler round-trips} *)

let test_insn_round_trip () =
  let edge =
    [ Insn.make (Action.Pushlit 0);
      Insn.make (Action.Pushlit 0xffff);
      Insn.make ~op:Op.Cand (Action.Pushlit 0);
      Insn.make ~op:Op.Eq (Action.Pushlit 0xffff);
      Insn.make Action.Nopush;
      Insn.make ~op:Op.And Action.Nopush
    ]
  in
  let check_insn insn =
    match Insn.of_string (Insn.to_string insn) with
    | Ok parsed ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %S" (Insn.to_string insn))
        true (Insn.equal insn parsed)
    | Error e -> Alcotest.failf "parse %S: %s" (Insn.to_string insn) e
  in
  List.iter check_insn edge;
  let rng = Gen.Rng.make 0xA5C1 in
  for _ = 1 to 300 do
    let pkt, _ = Gen.packet rng in
    List.iter check_insn (Program.insns (Gen.program rng pkt))
  done

let test_program_round_trip () =
  let check_program p =
    match Program.of_string (Program.to_string p) with
    | Ok parsed ->
      Alcotest.(check bool)
        (Format.asprintf "round-trip@.%a" Program.pp p)
        true (Program.equal p parsed)
    | Error e -> Alcotest.failf "parse failed (%s) for@.%a" e Program.pp p
  in
  check_program
    (Program.v ~priority:255
       [ Insn.make (Action.Pushlit 0); Insn.make ~op:Op.Eq (Action.Pushlit 0xffff) ]);
  let rng = Gen.Rng.make 0x9009 in
  for _ = 1 to 300 do
    let pkt, _ = Gen.packet rng in
    check_program (Gen.program rng pkt)
  done

(* {1 The seeded unsound-analysis mutant}

   [Analysis.For_testing.unsound_wrap] makes Add/Sub/Mul clamp at the 16-bit
   boundary instead of widening — the classic interval-domain wraparound
   bug. The oracle's analysis cross-check must catch it and shrink the
   evidence. *)

let with_unsound_wrap f =
  Analysis.For_testing.unsound_wrap := true;
  Fun.protect ~finally:(fun () -> Analysis.For_testing.unsound_wrap := false) f

let test_unsound_mutant_caught () =
  let stats =
    with_unsound_wrap (fun () ->
        Runner.run ~max_failures:1 ~seed:0xA11A ~iters:3_000 ())
  in
  match stats.Runner.failures with
  | [] -> Alcotest.fail "the oracle missed the unsound interval mutant"
  | f :: _ ->
    let blames_analysis =
      List.exists
        (fun (m : Oracle.mismatch) ->
          String.length m.Oracle.engine >= 8
          && String.sub m.Oracle.engine 0 8 = "analysis")
    in
    Alcotest.(check bool) "analysis cross-check is the accuser" true
      (blames_analysis f.Runner.mismatches);
    Alcotest.(check bool) "shrunk case still blames the analysis" true
      (blames_analysis f.Runner.shrunk_mismatches);
    Alcotest.(check bool)
      (Format.asprintf "reproducer is <= 4 insns, got:@.%a" Program.pp
         f.Runner.shrunk_program)
      true
      (Program.insn_count f.Runner.shrunk_program <= 4)

(* The pinned shrunk reproducer: 1 - 2 wraps to 0xffff (accept), while the
   clamping mutant computes the interval [0,0] and claims Always_reject. *)
let test_unsound_mutant_pinned () =
  let p = Program.v [ i Action.Pushone; i ~op:Op.Sub (Action.Pushlit 2) ] in
  let pkt = Packet.of_string "" in
  Alcotest.(check bool) "concrete run accepts" true (Interp.accepts p pkt);
  Alcotest.check verdict "sound analysis agrees" Analysis.Always_accept
    (analyze p).Analysis.verdict;
  let mutant_verdict = with_unsound_wrap (fun () -> (analyze p).Analysis.verdict) in
  Alcotest.check verdict "mutant claims the opposite" Analysis.Always_reject
    mutant_verdict;
  (match with_unsound_wrap (fun () -> Oracle.check p pkt) with
  | Oracle.Disagreement ms ->
    Alcotest.(check bool) "oracle blames analysis-verdict" true
      (List.exists (fun (m : Oracle.mismatch) -> m.Oracle.engine = "analysis-verdict") ms)
  | o -> Alcotest.failf "mutant not caught: %a" Oracle.pp_outcome o);
  match Oracle.check p pkt with
  | Oracle.Agreement { accept = true; _ } -> ()
  | o -> Alcotest.failf "sound analysis flagged: %a" Oracle.pp_outcome o

(* {1 The read set} *)

let read_set = Alcotest.testable Analysis.pp_read_set ( = )

let test_read_set_known_filters () =
  Alcotest.check read_set "accept_all reads nothing" (Analysis.Exact [])
    (analyze Predicates.accept_all).Analysis.read_set;
  Alcotest.check read_set "reject_all reads nothing" (Analysis.Exact [])
    (analyze Predicates.reject_all).Analysis.read_set;
  Alcotest.check read_set "fig 3-8 reads type + length words" (Analysis.Exact [ 1; 3 ])
    (analyze Predicates.fig_3_8).Analysis.read_set;
  Alcotest.check read_set "fig 3-9 reads ethertype + socket words"
    (Analysis.Exact [ 1; 7; 8 ])
    (analyze Predicates.fig_3_9).Analysis.read_set;
  (* A data-dependent Pushind index can reach any word. *)
  (match (analyze (Predicates.udp_dst_port_any_ihl 53)).Analysis.read_set with
  | Analysis.Unbounded -> ()
  | Analysis.Exact _ -> Alcotest.fail "any-IHL matcher must have an unbounded read set")

let test_read_set_constant_pushind () =
  (* An indirect push whose index the intervals prove constant stays exact. *)
  let p =
    Program.v
      [ i (Action.Pushlit 4); i Action.Pushind; i ~op:Op.Eq (Action.Pushlit 7) ]
  in
  Alcotest.check read_set "constant Pushind contributes its index"
    (Analysis.Exact [ 4 ]) (analyze p).Analysis.read_set

let test_read_set_ignores_dead_code () =
  (* Everything after a decided short-circuit is unreachable; its packet
     reads must not inflate the read set. *)
  let p =
    Program.v
      [ i Action.Pushzero;
        i ~op:Op.Cand Action.Pushone (* provably unequal: always rejects here *);
        i ~op:Op.Eq (Action.Pushword 9) ]
  in
  let a = analyze p in
  Alcotest.(check bool) "program really truncates" true (Analysis.dead_after a <> None);
  Alcotest.check read_set "dead Pushword 9 not counted" (Analysis.Exact [])
    a.Analysis.read_set

let test_union_read_sets () =
  Alcotest.check read_set "union sorts and dedups" (Analysis.Exact [ 1; 2; 3 ])
    (Analysis.union_read_sets (Analysis.Exact [ 3; 1 ]) (Analysis.Exact [ 2; 1 ]));
  Alcotest.check read_set "Unbounded absorbs on the left" Analysis.Unbounded
    (Analysis.union_read_sets Analysis.Unbounded (Analysis.Exact [ 1 ]));
  Alcotest.check read_set "Unbounded absorbs on the right" Analysis.Unbounded
    (Analysis.union_read_sets (Analysis.Exact [ 1 ]) Analysis.Unbounded)

let test_decision_read_set () =
  let tree =
    Decision.build
      [ (validate_exn Predicates.fig_3_8, `A); (validate_exn Predicates.fig_3_9, `B) ]
  in
  Alcotest.check read_set "union over the members" (Analysis.Exact [ 1; 3; 7; 8 ])
    (Decision.read_set tree);
  Alcotest.check read_set "empty build reads nothing" (Analysis.Exact [])
    (Decision.read_set (Decision.build []))

let suite =
  ( "analysis",
    [
      Alcotest.test_case "known filter facts" `Quick test_known_filters;
      Alcotest.test_case "read set of known filters" `Quick test_read_set_known_filters;
      Alcotest.test_case "read set: constant Pushind stays exact" `Quick
        test_read_set_constant_pushind;
      Alcotest.test_case "read set ignores dead code" `Quick test_read_set_ignores_dead_code;
      Alcotest.test_case "read set union" `Quick test_union_read_sets;
      Alcotest.test_case "decision tree union read set" `Quick test_decision_read_set;
      Alcotest.test_case "cost model bounds every run" `Quick test_cost_model;
      Alcotest.test_case "indirect index bound via data flow" `Quick test_indirect_bound;
      Alcotest.test_case "fast/closure skip proven checks" `Quick test_engines_skip_checks;
      Alcotest.test_case "interval-driven dead code elimination" `Quick test_dead_code;
      Alcotest.test_case "subsumption and disjointness" `Quick test_relations;
      Alcotest.test_case "decision tree runs cheap disjoint filter first" `Quick
        test_decision_cost_order;
      Alcotest.test_case "pfdev cost-bound admission control" `Quick test_pfdev_admission;
      Alcotest.test_case "pfdev filter relations and shadowing" `Quick
        test_pfdev_relations_and_shadowing;
      Alcotest.test_case "peephole preserves validity and verdict class" `Quick
        test_peephole_verdict_class;
      Alcotest.test_case "instruction assembler round-trip" `Quick test_insn_round_trip;
      Alcotest.test_case "program assembler round-trip" `Quick test_program_round_trip;
      Alcotest.test_case "unsound interval mutant caught and shrunk" `Quick
        test_unsound_mutant_caught;
      Alcotest.test_case "unsound interval mutant pinned repro" `Quick
        test_unsound_mutant_pinned;
    ] )
