(* The cross-filter dispatch automaton, tested differentially against the
   sequential walk it replaces: mirrored devices receive identical mutation
   streams (install / close / set_priority / set_filter / set_tap /
   set_copy_all) and identical packets, and must agree on every verdict and
   on per-port accept/drop accounting; plus residual-fallback coverage for
   unbounded read sets, direct unit tests of the build decisions, and the
   seeded unsound-prefix-sharing mutant, which the fuzz oracle must catch
   and shrink. *)

open Pf_kernel
module Packet = Pf_pkt.Packet
module Predicates = Pf_filter.Predicates
module Dispatch = Pf_filter.Dispatch
module Validate = Pf_filter.Validate
module Program = Pf_filter.Program
module Fast = Pf_filter.Fast
module Rng = Pf_fuzz.Gen.Rng
module Oracle = Pf_fuzz.Oracle
module Runner = Pf_fuzz.Runner

let mk_dev () =
  let eng = Pf_sim.Engine.create () in
  let costs = Pf_sim.Costs.free in
  let dev =
    Pfdev.create eng (Pf_sim.Cpu.create costs) costs (Pf_sim.Stats.create ())
      ~variant:Pf_net.Frame.Exp3 ~address:(Pf_net.Addr.exp 1)
      ~send:(fun _ -> ())
  in
  (eng, dev)

let set_filter_exn port program =
  match Pfdev.set_filter port program with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pfdev.pp_install_error e)

let validate_exn program =
  match Validate.check program with
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpectedly invalid: %a" Validate.pp_error e

(* {1 Mirrored-device equivalence under randomized mutation}

   A [`Sequential] and a [`Dispatch] device receive the same mutation
   stream and the same packets. Any divergence in a demux verdict or in
   per-port accounting is an automaton bug — in classification itself, in
   the rank-merged residual walk, or in a missed rebuild after a mutation
   (the rebuild-invalidation property: the automaton must be reconstructed
   after exactly the mutations that flush the flow cache). *)

(* Filter pool: exact guard chains (distinct sockets), a non-exact chain
   (pup_dst_port_10mb keeps code after its guards), a short chain shared
   across sockets (pup_type_is), an unbounded read set (residual), and a
   chainless accept-all (residual). *)
let pool =
  [|
    (fun s -> Predicates.pup_dst_socket (Int32.of_int (30 + s)));
    (fun s -> Predicates.pup_dst_port_10mb ~host:3 (Int32.of_int (30 + s)));
    (fun s -> Predicates.pup_type_is (1 + (s mod 3)));
    (fun s -> Predicates.udp_dst_port_any_ihl (1000 + s));
    (fun _ -> Predicates.accept_all);
  |]

let random_program rng =
  let f = pool.(Rng.int rng (Array.length pool)) in
  f (Rng.int rng 4)

let random_packet rng =
  if Rng.chance rng 20 then Testutil.ip_udp_frame ~dst_port:(1000 + Rng.int rng 4)
  else
    Testutil.pup_frame
      ~ptype:(1 + Rng.int rng 3)
      ~dst_socket:(Int32.of_int (30 + Rng.int rng 4))
      ()

let run_mirrored ~seed ~cache ~steps =
  let rng = Rng.make seed in
  let eng_s, dev_s = mk_dev () in
  let eng_a, dev_a = mk_dev () in
  Pfdev.set_cache_enabled dev_s cache;
  Pfdev.set_cache_enabled dev_a cache;
  Pfdev.set_strategy dev_a `Dispatch;
  (* Parallel port pairs, index-aligned across the two devices. *)
  let ports = ref [] in
  let open_pair () =
    let ps = Pfdev.open_port dev_s and pa = Pfdev.open_port dev_a in
    Pfdev.set_queue_limit ps 2;
    Pfdev.set_queue_limit pa 2;
    ports := !ports @ [ (ps, pa) ];
    (ps, pa)
  in
  let pick rng =
    match !ports with
    | [] -> None
    | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let mutate rng =
    match Rng.int rng 6 with
    | 0 ->
      let ps, pa = open_pair () in
      let p = random_program rng in
      set_filter_exn ps p;
      set_filter_exn pa p
    | 1 -> (
      match pick rng with
      | Some (ps, pa) when List.length !ports > 1 ->
        Pfdev.close_port ps;
        Pfdev.close_port pa;
        ports := List.filter (fun (q, _) -> q != ps) !ports
      | _ -> ())
    | 2 -> (
      match pick rng with
      | Some (ps, pa) ->
        let p = random_program rng in
        set_filter_exn ps p;
        set_filter_exn pa p
      | None -> ())
    | 3 -> (
      match pick rng with
      | Some (ps, pa) ->
        let pri = Rng.int rng 4 in
        Pfdev.set_priority ps pri;
        Pfdev.set_priority pa pri
      | None -> ())
    | 4 -> (
      match pick rng with
      | Some (ps, pa) ->
        let flag = Rng.bool rng in
        Pfdev.set_copy_all ps flag;
        Pfdev.set_copy_all pa flag
      | None -> ())
    | _ -> (
      match pick rng with
      | Some (ps, pa) ->
        let flag = Rng.bool rng in
        Pfdev.set_tap ps flag;
        Pfdev.set_tap pa flag
      | None -> ())
  in
  for step = 1 to steps do
    mutate rng;
    (* A short burst of shared packets after every mutation; the occasional
       kernel-claimed packet exercises the taps-only bypass. *)
    for _ = 1 to 4 do
      let packet = random_packet rng in
      let kernel_claimed = Rng.chance rng 8 in
      let rs = Pfdev.demux dev_s ~kernel_claimed packet in
      let ra = Pfdev.demux dev_a ~kernel_claimed packet in
      if rs <> ra then
        Alcotest.failf
          "step %d: sequential walk says %b, dispatch automaton says %b" step
          rs ra
    done
  done;
  Pf_sim.Engine.run eng_s;
  Pf_sim.Engine.run eng_a;
  List.iteri
    (fun i (ps, pa) ->
      Alcotest.(check int)
        (Printf.sprintf "port %d accepted" i)
        (Pfdev.port_accepted ps) (Pfdev.port_accepted pa);
      Alcotest.(check int)
        (Printf.sprintf "port %d dropped" i)
        (Pfdev.port_dropped ps) (Pfdev.port_dropped pa))
    !ports;
  let ds = Pfdev.dispatch_stats dev_a in
  Alcotest.(check bool) "automaton actually classified packets" true
    (ds.Pfdev.classifies > 0);
  Alcotest.(check bool) "automaton rebuilt after mutations" true
    (ds.Pfdev.rebuilds > 1)

let test_mirrored_mutations_cache_off () =
  List.iter
    (fun seed -> run_mirrored ~seed ~cache:false ~steps:40)
    [ 1; 2; 3; 4; 5 ]

let test_mirrored_mutations_cache_on () =
  List.iter
    (fun seed -> run_mirrored ~seed ~cache:true ~steps:40)
    [ 6; 7; 8; 9; 10 ]

(* {1 Residual fallback: unbounded read sets}

   A filter whose read set is [Unbounded] (IHL-indexed UDP matching) can
   never be indexed; the automaton must classify it residual and the
   [`Dispatch] device must still deliver through the per-port walk. *)

let test_unbounded_residual_fallback () =
  let udp = Predicates.udp_dst_port_any_ihl 53 in
  let d =
    Dispatch.build
      [ (validate_exn udp, "udp"); (validate_exn (Predicates.pup_dst_socket 35l), "pup") ]
  in
  (match List.assoc_opt 0 (List.map (fun (r, _, d) -> (r, d)) (Dispatch.decisions d)) with
  | Some (Dispatch.Residual `Unbounded) -> ()
  | Some other ->
    Alcotest.failf "expected Residual `Unbounded, got %a" Dispatch.pp_decision other
  | None -> Alcotest.fail "no decision recorded for the UDP filter");
  let eng, dev = mk_dev () in
  Pfdev.set_strategy dev `Dispatch;
  let port = Pfdev.open_port dev in
  set_filter_exn port udp;
  let hit = Pfdev.demux dev (Testutil.ip_udp_frame ~dst_port:53) in
  let miss = Pfdev.demux dev (Testutil.ip_udp_frame ~dst_port:54) in
  Pf_sim.Engine.run eng;
  Alcotest.(check bool) "matching UDP packet delivered" true hit;
  Alcotest.(check bool) "non-matching UDP packet refused" false miss;
  let ds = Pfdev.dispatch_stats dev in
  Alcotest.(check bool) "delivery went through the residual walk" true
    (ds.Pfdev.residual_runs > 0)

(* {1 Direct unit tests of build decisions and classification} *)

(* Classification + rank-merged residual walk, against a plain linear
   first-match reference over the same rank order. *)
let test_classify_matches_linear_reference () =
  let filters =
    [
      ("sock35-pri2", Predicates.pup_dst_socket ~priority:2 35l);
      ("sock36", Predicates.pup_dst_socket 36l);
      ("type2", Predicates.pup_type_is 2);
      ("udp1000", Predicates.udp_dst_port_any_ihl 1000);
      ("any", Predicates.accept_all);
    ]
  in
  let entries = List.map (fun (n, p) -> (validate_exn p, n)) filters in
  (* Rank order: priority desc, then position — recompute it here. *)
  let ranked =
    List.mapi (fun i (v, n) -> (i, v, n)) entries
    |> List.stable_sort (fun (i, va, _) (j, vb, _) ->
           match
             compare
               (Program.priority (Validate.program vb))
               (Program.priority (Validate.program va))
           with
           | 0 -> compare i j
           | c -> c)
  in
  let reference packet =
    List.find_map
      (fun (_, v, n) -> if Fast.run (Fast.compile v) packet then Some n else None)
      ranked
  in
  let d = Dispatch.build entries in
  let merged packet =
    let winner, _ = Dispatch.classify d packet in
    let winner_rank = match winner with Some (r, _) -> r | None -> max_int in
    let rec walk = function
      | [] -> Option.map snd winner
      | (rank, _) :: _ when rank > winner_rank -> Option.map snd winner
      | (rank, n) :: rest ->
        let _, v, _ = List.nth ranked rank in
        if Fast.run (Fast.compile v) packet then Some n else walk rest
    in
    walk (Dispatch.residuals d)
  in
  let packets =
    List.concat_map
      (fun socket ->
        List.map
          (fun ptype -> Testutil.pup_frame ~ptype ~dst_socket:(Int32.of_int socket) ())
          [ 1; 2; 3 ])
      [ 34; 35; 36; 37 ]
    @ [ Testutil.ip_udp_frame ~dst_port:1000; Testutil.ip_udp_frame ~dst_port:999;
        Packet.of_string "" ]
  in
  List.iter
    (fun packet ->
      Alcotest.(check (option string))
        "automaton+residual walk equals the linear walk" (reference packet)
        (merged packet))
    packets

let test_identical_filters_shadowed () =
  let v () = validate_exn (Predicates.pup_dst_socket 35l) in
  let d = Dispatch.build [ (v (), "first"); (v (), "second") ] in
  (match Dispatch.decisions d with
  | [ (0, "first", Dispatch.Indexed _); (1, "second", Dispatch.Shadowed { by = 0 }) ]
    -> ()
  | ds ->
    Alcotest.failf "expected the duplicate filter shadowed by rank 0, got:@.%a"
      (Format.pp_print_list (fun ppf (r, n, d) ->
           Format.fprintf ppf "  rank %d (%s): %a@." r n Dispatch.pp_decision d))
      ds);
  (* The shadowed entry must never win — and the shadow must not lose the
     packet either. *)
  match Dispatch.classify d (Testutil.pup_frame ~dst_socket:35l ()) with
  | Some (0, "first"), _ -> ()
  | Some (r, n), _ -> Alcotest.failf "wrong winner: rank %d (%s)" r n
  | None, _ -> Alcotest.fail "the packet should have been classified"

let test_never_accepts_dropped () =
  let d =
    Dispatch.build
      [ (validate_exn Predicates.reject_all, "never");
        (validate_exn (Predicates.pup_dst_socket 35l), "sock") ]
  in
  (match List.map (fun (_, n, dec) -> (n, dec)) (Dispatch.decisions d) with
  | [ ("never", Dispatch.Never_accepts); ("sock", Dispatch.Indexed _) ] -> ()
  | _ -> Alcotest.fail "reject-all should be dropped as Never_accepts");
  Alcotest.(check int) "no residuals" 0 (List.length (Dispatch.residuals d));
  match Dispatch.classify d (Testutil.pup_frame ~dst_socket:35l ()) with
  | Some (_, "sock"), _ -> ()
  | _ -> Alcotest.fail "the live filter should still win"

let test_copy_all_goes_residual () =
  let v () = validate_exn (Predicates.pup_dst_socket 35l) in
  let d =
    Dispatch.build
      ~indexable:(fun name -> name <> "monitor")
      [ (v (), "monitor"); (v (), "consumer") ]
  in
  match List.map (fun (_, n, dec) -> (n, dec)) (Dispatch.decisions d) with
  | [ ("monitor", Dispatch.Residual `Excluded); ("consumer", Dispatch.Indexed _) ]
    -> ()
  | _ -> Alcotest.fail "the excluded port must go residual, not indexed"

(* {1 The seeded unsound-prefix-sharing mutant}

   Flip the automaton into accepting every slot-matched candidate on its
   guard prefix alone — the unsound sharing the [exact] distinction
   prevents. The fuzz oracle's demux-dispatch engine must catch it (the
   automaton accepts packets the sequential walk rejects), and the shrinker
   must reduce the evidence to an eyeball-sized reproducer. *)

let test_unsound_sharing_mutant_caught_and_shrunk () =
  Dispatch.For_testing.unsound_prefix_sharing := true;
  let stats =
    Fun.protect
      ~finally:(fun () -> Dispatch.For_testing.unsound_prefix_sharing := false)
      (fun () -> Runner.run ~max_failures:1 ~seed:0xD15B ~iters:2_000 ())
  in
  match stats.Runner.failures with
  | [] -> Alcotest.fail "the oracle missed the unsound-prefix-sharing mutant"
  | f :: _ ->
    Alcotest.(check bool) "dispatch demux is the culprit" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "demux-dispatch")
         f.Runner.mismatches);
    Alcotest.(check bool) "shrunk case still disagrees" true
      (List.exists
         (fun (m : Oracle.mismatch) -> m.Oracle.engine = "demux-dispatch")
         f.Runner.shrunk_mismatches);
    Alcotest.(check bool)
      (Format.asprintf "reproducer is <= 5 insns, got:@.%a" Program.pp
         f.Runner.shrunk_program)
      true
      (Program.insn_count f.Runner.shrunk_program <= 5);
    Alcotest.(check bool) "repro command present" true
      (Testutil.contains f.Runner.repro "pffuzz --seed")

let suite =
  ( "dispatch",
    [
      Alcotest.test_case "mirrored mutations, cache off" `Quick
        test_mirrored_mutations_cache_off;
      Alcotest.test_case "mirrored mutations, cache on" `Quick
        test_mirrored_mutations_cache_on;
      Alcotest.test_case "unbounded read set falls back to the residual walk"
        `Quick test_unbounded_residual_fallback;
      Alcotest.test_case "classify + residual merge equals the linear walk"
        `Quick test_classify_matches_linear_reference;
      Alcotest.test_case "identical filter is shadowed" `Quick
        test_identical_filters_shadowed;
      Alcotest.test_case "never-accepting filter is dropped" `Quick
        test_never_accepts_dropped;
      Alcotest.test_case "excluded (copy-all) filter goes residual" `Quick
        test_copy_all_goes_residual;
      Alcotest.test_case "unsound-prefix-sharing mutant caught and shrunk"
        `Quick test_unsound_sharing_mutant_caught_and_shrunk;
    ] )
