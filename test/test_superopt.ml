(* The stochastic superoptimizer: determinism (fixed seed, fixed budget =>
   byte-identical programs and identical statistics), the proof-gating
   invariants (accepted = proved, never costlier, best provably equal to
   the source), the refuted-candidate witnesses, the shared equivalence
   memo, and the [`Regvm_super] kernel strategy's accounting. *)

open Pf_filter
module Packet = Pf_pkt.Packet
module Pfdev = Pf_kernel.Pfdev
module Gen = Pf_fuzz.Gen

let validated program =
  match Validate.check program with
  | Ok v -> v
  | Error e -> Alcotest.failf "builtin invalid: %a" Validate.pp_error e

let search_builtin ?memo ?(budget = Superopt.default_budget) program =
  Superopt.search ?memo ~budget ~seed:Superopt.default_seed
    (fst (Regopt.optimize (validated program)))

(* {1 Determinism} *)

let test_determinism () =
  List.iter
    (fun (name, program) ->
      let a = search_builtin program in
      let b = search_builtin program in
      Alcotest.(check (list int))
        (name ^ ": byte-identical best program")
        (Ir.encode a.Superopt.best) (Ir.encode b.Superopt.best);
      Alcotest.(check bool)
        (name ^ ": identical statistics")
        true
        (a.Superopt.stats = b.Superopt.stats);
      Alcotest.(check int)
        (name ^ ": identical refuted pool")
        (List.length a.Superopt.refuted)
        (List.length b.Superopt.refuted))
    Predicates.builtins

(* {1 Proof gating over the builtin corpus} *)

let test_never_worse_and_proved () =
  let wins = ref 0 in
  List.iter
    (fun (name, program) ->
      let v = validated program in
      let o = search_builtin program in
      let st = o.Superopt.stats in
      Alcotest.(check int)
        (name ^ ": every accepted commit carries a proof")
        st.Superopt.proved st.Superopt.accepted;
      Alcotest.(check bool)
        (name ^ ": never costlier than the pipeline output")
        true
        (o.Superopt.best_cost <= o.Superopt.initial_cost);
      if o.Superopt.best_cost < o.Superopt.initial_cost then incr wins;
      (* The chain only moves through proved steps, so the final program is
         equal to the source filter by transitivity — and the checker can
         re-prove it directly. *)
      let r = Equiv.check ~budget:192 ~pair_budget:1024 (Equiv.Prog v)
          (Equiv.Ir_prog o.Superopt.best)
      in
      (match r.Equiv.verdict with
      | Equiv.Counterexample w ->
        Alcotest.failf "%s: best program refuted at %a" name Packet.pp_hex w
      | Equiv.Proved_equal | Equiv.Unknown -> ()))
    Predicates.builtins;
  (* The bench gate's win class exists: fig-3-8 plus the naive blender
     variants all strictly improve. *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 5 of %d builtins improve (saw %d)"
       (List.length Predicates.builtins) !wins)
    true (!wins >= 5)

(* {1 Refuted candidates carry separating witnesses} *)

let test_refuted_witnesses_diverge () =
  let total = ref 0 in
  List.iter
    (fun (name, program) ->
      let o = search_builtin program in
      List.iter
        (fun (r : Superopt.refuted_candidate) ->
          incr total;
          let w = r.Superopt.witness in
          Alcotest.(check bool)
            (name ^ ": witness separates candidate from incumbent")
            true
            (r.Superopt.candidate_verdict <> r.Superopt.incumbent_verdict);
          Alcotest.(check bool)
            (name ^ ": candidate verdict replays")
            r.Superopt.candidate_verdict
            (Ir.exec r.Superopt.candidate w);
          (* The incumbent is provably the source filter, so the reference
             interpreter must reproduce its side of the divergence. *)
          Alcotest.(check bool)
            (name ^ ": incumbent verdict is the filter's verdict")
            r.Superopt.incumbent_verdict
            (Interp.accepts ~semantics:`Paper program w))
        o.Superopt.refuted)
    Predicates.builtins;
  Alcotest.(check bool)
    (Printf.sprintf "the corpus produced refuted candidates (saw %d)" !total)
    true (!total > 0)

(* {1 The shared equivalence memo} *)

let test_memo_reuse () =
  let _, program = List.nth Predicates.builtins 0 (* fig-3-8 *) in
  let memo = Equiv.Memo.create () in
  let a = search_builtin ~memo program in
  let hits_after_first = Equiv.Memo.check_hits memo in
  let b = search_builtin ~memo program in
  Alcotest.(check (list int)) "memoized rerun finds the same program"
    (Ir.encode a.Superopt.best) (Ir.encode b.Superopt.best);
  Alcotest.(check bool) "rerun answers every query from the memo" true
    (Equiv.Memo.check_hits memo - hits_after_first
     >= b.Superopt.stats.Superopt.equiv_checks);
  Alcotest.(check int) "memo hits surfaced in the stats"
    (Equiv.Memo.check_hits memo - hits_after_first)
    b.Superopt.stats.Superopt.memo_hits;
  Alcotest.(check bool) "memo retains entries" true (Equiv.Memo.size memo > 0)

(* {1 The [`Regvm_super] kernel strategy} *)

let mk_dev strategy =
  let eng = Pf_sim.Engine.create () in
  let costs = Pf_sim.Costs.microvax_ii in
  let cpu = Pf_sim.Cpu.create costs in
  let stats = Pf_sim.Stats.create () in
  let dev =
    Pfdev.create eng cpu costs stats ~variant:Pf_net.Frame.Exp3
      ~address:(Pf_net.Addr.exp 1)
      ~send:(fun _ -> ())
  in
  Pfdev.set_compile_strategy dev strategy;
  Pfdev.set_cache_enabled dev false;
  (eng, stats, dev)

let superopt_counters stats =
  List.map
    (fun k -> (k, Pf_sim.Stats.get stats ("pf.superopt." ^ k)))
    [ "accepted"; "rejected"; "refuted"; "proved" ]

let test_pfdev_regvm_super () =
  let program = Predicates.naive_udp_dst_port 53 in
  let rng = Gen.Rng.make 0xBEEF in
  let packets = List.init 60 (fun _ -> fst (Gen.packet rng)) in
  let run strategy =
    let eng, stats, dev = mk_dev strategy in
    let port = Pfdev.open_port dev in
    (match Pfdev.set_filter port program with
    | Ok () -> ()
    | Error e -> Alcotest.failf "install: %a" Pfdev.pp_install_error e);
    let verdicts = List.map (fun pkt -> Pfdev.demux dev pkt) packets in
    Pf_sim.Engine.run eng;
    (verdicts, Option.get (Pfdev.port_engine_stats port), stats)
  in
  let v_off, _, _ = run `Off in
  let v_reg, s_reg, _ = run `Regvm in
  let v_super, s_super, st_a = run `Regvm_super in
  let _, _, st_b = run `Regvm_super in
  Alcotest.(check (list bool)) "regvm verdicts agree" v_off v_reg;
  Alcotest.(check (list bool)) "superopt verdicts agree" v_off v_super;
  Alcotest.(check bool) "engine kind" true (s_super.Pfdev.engine = `Regvm_super);
  (* The search strictly improved this naive blender filter, and the
     per-executed-instruction charging sees it. *)
  Alcotest.(check bool) "superopt executes fewer IR steps" true
    (s_super.Pfdev.insns_executed < s_reg.Pfdev.insns_executed);
  (* Install-time accounting: the invariant and install-to-install
     determinism (fresh devices, same filter => identical counters). *)
  Alcotest.(check int) "pf.superopt.accepted = pf.superopt.proved"
    (Pf_sim.Stats.get st_a "pf.superopt.proved")
    (Pf_sim.Stats.get st_a "pf.superopt.accepted");
  Alcotest.(check bool) "search did commit improvements" true
    (Pf_sim.Stats.get st_a "pf.superopt.accepted" > 0);
  Alcotest.(check
              (list (pair string int)))
    "identical counters across fresh installs" (superopt_counters st_a)
    (superopt_counters st_b);
  (* The strategy always certifies its installs. *)
  Alcotest.(check bool) "install certified" true
    (Pf_sim.Stats.get st_a "pf.certify.proved" > 0
     || Pf_sim.Stats.get st_a "pf.certify.unknown" > 0)

let suite =
  ( "superopt",
    [ Alcotest.test_case "fixed seed, fixed output (corpus)" `Quick
        test_determinism;
      Alcotest.test_case "never worse, accepted = proved (corpus)" `Quick
        test_never_worse_and_proved;
      Alcotest.test_case "refuted candidates diverge at their witness" `Quick
        test_refuted_witnesses_diverge;
      Alcotest.test_case "shared equivalence memo" `Quick test_memo_reuse;
      Alcotest.test_case "pfdev `Regvm_super strategy" `Quick
        test_pfdev_regvm_super
    ] )
