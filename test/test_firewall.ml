(* The verified firewall frontend: grammar round-trips and parse errors,
   reference semantics at the frame-shape edges (fragments, truncation,
   wrong framing), translation-validated compilation of the shipped
   example tables, the lint's exact classification of the seeded demo
   table with a confirmed conflict witness, kernel installation and demux
   agreement under both walk strategies, a fixed-seed differential fuzz
   campaign, and the seeded last-match-wins mutant the oracle must catch
   and shrink. *)

module Packet = Pf_pkt.Packet
module Builder = Pf_pkt.Builder
module Rule = Pf_firewall.Rule
module Table = Pf_firewall.Table
module Compile = Pf_firewall.Compile
module Lint = Pf_firewall.Lint
module Install = Pf_firewall.Install
module Fwcase = Pf_fuzz.Fwcase
module Pfdev = Pf_kernel.Pfdev
open Pf_filter

(* Rule-for-rule copies of examples/clean.fw and examples/demo.fw; the
   golden fwlint tests pin the files themselves, this suite pins the
   classifications as data. *)
let clean_src =
  "default drop\n\
   accept tcp from any to 10.0.0.0/8 port 22\n\
   accept udp from any to 10.0.0.0/8 port 53\n\
   accept tcp from any to 10.10.0.0/16 port 80-443\n"

let demo_src =
  "default drop\n\
   accept tcp from any to 10.0.0.0/8 port 22\n\
   accept tcp from any to 10.1.0.0/16 port 22\n\
   drop tcp from any to 10.0.0.0/8 port 1024-65535\n\
   accept tcp from any to 10.2.0.0/16 port 1000-2000\n\
   drop tcp from any to 10.0.0.0/8 port 23-999\n\
   accept tcp from any to 10.5.0.0/16 port 22-100\n\
   drop udp from 192.168.0.0/16 to any\n\
   accept udp from 10.0.0.0/8 to 10.0.0.0/8 port 53\n"

let table_exn src =
  match Table.of_string src with
  | Ok t -> t
  | Error e -> Alcotest.failf "table parse: %s" e

let rule_exn s =
  match Rule.of_string s with
  | Ok r -> r
  | Error e -> Alcotest.failf "rule parse %S: %s" s e

let compile_exn t =
  match Compile.compile t with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile: %a" Validate.pp_error e

let analyze_exn t =
  match Lint.analyze t with
  | Ok r -> r
  | Error e -> Alcotest.failf "analyze: %a" Validate.pp_error e

(* A 19-word Dix10 IPv4 frame with every matched field settable. *)
let frame ?(ethertype = 0x0800) ?(vihl = 0x4500) ?(frag = 0) ?(proto = 6)
    ?(src = 0x0a000001l) ?(dst = 0x0a000002l) ?(sport = 40000) ?(dport = 22)
    () =
  let b = Builder.create () in
  Builder.add_string b (String.make 12 '\x00');
  Builder.add_word b ethertype;
  Builder.add_word b vihl;
  Builder.add_word b 40 (* total length *);
  Builder.add_word b 0 (* identification *);
  Builder.add_word b frag;
  Builder.add_word b ((64 lsl 8) lor proto);
  Builder.add_word b 0 (* header checksum *);
  Builder.add_word32 b src;
  Builder.add_word32 b dst;
  Builder.add_word b sport;
  Builder.add_word b dport;
  Builder.to_packet b

(* {1 Grammar} *)

let test_rule_roundtrip () =
  (* already-canonical text must survive both directions unchanged *)
  List.iter
    (fun s ->
      let r = rule_exn s in
      Alcotest.(check string) s s (Rule.to_string r);
      Alcotest.(check bool) "re-parse" true (Rule.equal r (rule_exn (Rule.to_string r))))
    [
      "accept tcp from any to 10.0.0.0/8 port 22";
      "drop any from 192.168.0.0/16 to any";
      "accept udp from 10.0.0.0/8 port 53 to 10.1.2.3 port 1024-65535";
      "drop tcp from any port 0-1023 to any";
      "accept any from any to any";
    ];
  (* normalizations: host bits cleared, /32 implicit, whitespace free *)
  Alcotest.(check string) "host bits"
    "drop tcp from 10.1.0.0/16 to any"
    (Rule.to_string (rule_exn "drop  tcp  from 10.1.2.3/16 to any"));
  Alcotest.(check string) "/32 implicit"
    "accept udp from 10.1.2.3 to any"
    (Rule.to_string (rule_exn "accept udp from 10.1.2.3/32 to any"))

let test_rule_errors () =
  List.iter
    (fun s ->
      match Rule.of_string s with
      | Ok r -> Alcotest.failf "accepted %S as %S" s (Rule.to_string r)
      | Error _ -> ())
    [
      "accept any from any port 22 to any" (* ports need tcp/udp *);
      "permit tcp from any to any";
      "accept icmp from any to any";
      "accept tcp from 10.0.0.0/33 to any";
      "accept tcp from 10.0.0 to any";
      "accept tcp from any to any port 70000";
      "accept tcp from any to any port 22-7";
      "accept tcp from any to any port";
      "accept tcp from any";
      "accept tcp from any to any junk";
      "";
    ]

let test_table_roundtrip () =
  let t = table_exn demo_src in
  Alcotest.(check int) "rules" 8 (List.length t.Table.rules);
  Alcotest.(check bool) "default drop" true (t.Table.default = Rule.Drop);
  (match Table.of_string (Table.to_string t) with
  | Ok t2 -> Alcotest.(check bool) "round-trip" true (Table.equal t t2)
  | Error e -> Alcotest.failf "re-parse: %s" e);
  (* comments and blank lines vanish; default may come first or last *)
  let t3 = table_exn "# policy\n\ndefault accept\naccept any from any to any # all\n" in
  Alcotest.(check int) "commented rules" 1 (List.length t3.Table.rules);
  Alcotest.(check bool) "default accept" true (t3.Table.default = Rule.Accept);
  (match Table.of_string "default drop\ndefault accept\n" with
  | Ok _ -> Alcotest.fail "duplicate default accepted"
  | Error _ -> ());
  match Table.of_string "accept any from any to any\ngarbage here\n" with
  | Ok _ -> Alcotest.fail "garbage line accepted"
  | Error e ->
      Alcotest.(check string) "line number" "line 2" (String.sub e 0 6)

(* {1 Reference semantics} *)

let test_semantics () =
  let t = table_exn "default drop\naccept tcp from any to 10.0.0.0/8 port 22\n" in
  Alcotest.(check bool) "match" true (Table.accepts t (frame ()));
  Alcotest.(check bool) "wrong port" false (Table.accepts t (frame ~dport:23 ()));
  Alcotest.(check bool) "wrong proto" false (Table.accepts t (frame ~proto:17 ()));
  Alcotest.(check bool) "wrong dst" false
    (Table.accepts t (frame ~dst:0x0b000001l ()));
  (* a ported rule must not match a non-first fragment: no transport
     header there to read ports from *)
  Alcotest.(check bool) "fragment vs ported rule" false
    (Table.accepts t (frame ~frag:7 ()));
  let portless = table_exn "default drop\naccept any from any to 10.0.0.0/8\n" in
  Alcotest.(check bool) "fragment vs portless rule" true
    (Table.accepts portless (frame ~frag:7 ()));
  (* malformed frames drop before the rules, whatever the default *)
  let ta = table_exn "default accept\n" in
  Alcotest.(check bool) "well-formed" true (Table.accepts ta (frame ()));
  Alcotest.(check bool) "truncated" false
    (Table.accepts ta (Packet.sub (frame ()) ~pos:0 ~len:20));
  Alcotest.(check bool) "bad ethertype" false
    (Table.accepts ta (frame ~ethertype:0x0806 ()));
  Alcotest.(check bool) "bad version" false
    (Table.accepts ta (frame ~vihl:0x4600 ()))

(* {1 Compilation} *)

let test_examples_certified () =
  List.iter
    (fun (name, src) ->
      let c = compile_exn (table_exn src) in
      Alcotest.(check bool) (name ^ " certified") true
        (c.Compile.certification = Equiv.Certified);
      Alcotest.(check bool) (name ^ " no fallback") false c.Compile.fell_back;
      (match c.Compile.report.Equiv.verdict with
      | Equiv.Proved_equal -> ()
      | _ -> Alcotest.fail (name ^ ": naive/optimized not proved equal"));
      (* the optimized program must actually be smaller *)
      let words v = Program.code_words (Validate.program v) in
      Alcotest.(check bool) (name ^ " optimizer won") true
        (words c.Compile.installed < words c.Compile.naive))
    [ ("clean", clean_src); ("demo", demo_src) ]

let test_rule_guards () =
  (* a fully-exact rule leads with the shape guard's EtherType test *)
  let guards, _exact =
    Compile.rule_guards (rule_exn "accept tcp from any to any port 22")
  in
  Alcotest.(check bool) "nonempty" true (guards <> []);
  Alcotest.(check bool) "ethertype first" true
    (List.hd guards = (Rule.ethertype_word, 0x0800))

(* {1 Lint} *)

let test_clean_lint () =
  let r = analyze_exn (table_exn clean_src) in
  Alcotest.(check int) "findings" 0 (Lint.findings r);
  Alcotest.(check bool) "all live" true
    (Array.for_all (fun c -> c = Lint.Live) r.Lint.classes);
  Alcotest.(check int) "conflicts" 0 (List.length r.Lint.conflicts);
  Alcotest.(check int) "unknowns" 0 (List.length r.Lint.unknowns)

let test_demo_lint () =
  let t = table_exn demo_src in
  let r = analyze_exn t in
  let expected =
    [|
      Lint.Live;
      Lint.Shadowed 0;
      Lint.Live;
      Lint.Conflicting 2;
      Lint.Live;
      Lint.Dead;
      Lint.Redundant;
      Lint.Live;
    |]
  in
  Alcotest.(check int) "findings" 4 (Lint.findings r);
  Alcotest.(check int) "classes" (Array.length expected)
    (Array.length r.Lint.classes);
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "rule %d class" (i + 1)) true
        (c = expected.(i)))
    r.Lint.classes;
  Alcotest.(check int) "unknowns" 0 (List.length r.Lint.unknowns);
  match r.Lint.conflicts with
  | [ c ] ->
      Alcotest.(check int) "earlier" 2 c.Lint.earlier;
      Alcotest.(check int) "later" 3 c.Lint.later;
      Alcotest.(check bool) "confirmed" true c.Lint.confirmed;
      Alcotest.(check bool) "drop wins by order" true
        (c.Lint.resolved = Rule.Drop);
      (* the synthesized witness is concretely in the overlap, and it
         replays identically through the reference semantics, the naive
         chain and the installed program *)
      let w = c.Lint.witness in
      let rule i = List.nth t.Table.rules i in
      Alcotest.(check bool) "earlier rule matches witness" true
        (Rule.matches (rule 2) w);
      Alcotest.(check bool) "later rule matches witness" true
        (Rule.matches (rule 3) w);
      let reference = Table.accepts t w in
      Alcotest.(check bool) "reference follows the earlier rule"
        (c.Lint.resolved = Rule.Accept) reference;
      let accepts v =
        Interp.accepts ~semantics:`Paper (Validate.program v) w
      in
      Alcotest.(check bool) "naive chain replay" reference
        (accepts r.Lint.compiled.Compile.naive);
      Alcotest.(check bool) "installed program replay" reference
        (accepts r.Lint.compiled.Compile.installed)
  | cs -> Alcotest.failf "expected exactly 1 conflict, got %d" (List.length cs)

(* {1 The memoized relate} *)

let single_rule_program s =
  Validate.check_exn
    (Compile.optimized_program (Table.v ~default:Rule.Drop [ rule_exn s ]))

let test_relate_memo () =
  let va = single_rule_program "accept tcp from any to any port 22" in
  let vb = single_rule_program "accept tcp from any to any port 80-443" in
  (* intervals alone cannot decide this pair — the memoized symbolic
     fallback must *)
  Alcotest.(check bool) "analysis is stuck" true
    (Analysis.relate va vb = Analysis.Unknown);
  let memo = Equiv.Memo.create () in
  Alcotest.(check bool) "disjoint" true
    (Equiv.relate_memo memo va vb = Analysis.Disjoint);
  Alcotest.(check int) "memoized" 1 (Equiv.Memo.size memo);
  Alcotest.(check bool) "cache hit agrees" true
    (Equiv.relate_memo memo va vb = Analysis.Disjoint);
  Alcotest.(check int) "no regrowth" 1 (Equiv.Memo.size memo);
  Alcotest.(check bool) "matches the unmemoized relate" true
    (Equiv.relate va vb = Analysis.Disjoint)

(* {1 Kernel installation} *)

let mk_dev () =
  let costs = Pf_sim.Costs.free in
  Pfdev.create (Pf_sim.Engine.create ())
    (Pf_sim.Cpu.create costs)
    costs
    (Pf_sim.Stats.create ())
    ~variant:Pf_net.Frame.Dix10
    ~address:(Pf_net.Addr.eth_host 1)
    ~send:(fun _ -> ())

let test_install () =
  let t = table_exn clean_src in
  let probes =
    [
      frame () (* ssh into 10/8: accept *);
      frame ~dport:23 ();
      frame ~proto:17 ~dport:53 () (* dns: accept *);
      frame ~dst:0x0a0a0001l ~dport:443 () (* web to 10.10/16: accept *);
      frame ~dst:0x0b000001l ();
      frame ~ethertype:0x0806 ();
      frame ~vihl:0x4600 ();
      frame ~frag:3 ();
    ]
  in
  List.iter
    (fun strategy ->
      let dev = mk_dev () in
      Pfdev.set_strategy dev strategy;
      let port = Pfdev.open_port dev in
      match Install.install port t with
      | Error e -> Alcotest.failf "install: %a" Install.pp_error e
      | Ok (c, _analysis) ->
          Alcotest.(check bool) "certified program installed" true
            (c.Compile.certification = Equiv.Certified);
          List.iteri
            (fun i pkt ->
              Alcotest.(check bool)
                (Printf.sprintf "demux = reference (probe %d)" i)
                (Table.accepts t pkt) (Pfdev.demux dev pkt))
            probes)
    [ `Sequential; `Dispatch ]

(* {1 The fuzz oracle} *)

let test_fuzz_campaign () =
  let stats = Fwcase.run ~seed:1 ~iters:200 () in
  Alcotest.(check int) "cases" 200 stats.Fwcase.cases;
  Alcotest.(check int) "disagreements" 0 (List.length stats.Fwcase.failures)

let test_mutant_caught () =
  let stats =
    Fun.protect
      ~finally:(fun () -> Compile.For_testing.last_match_wins := false)
      (fun () ->
        Compile.For_testing.last_match_wins := true;
        Fwcase.run ~max_failures:1 ~seed:1 ~iters:2000 ())
  in
  match stats.Fwcase.failures with
  | [] -> Alcotest.fail "last-match-wins mutant survived 2000 cases"
  | f :: _ ->
      (* shrinking must reduce the counterexample to its essence: two
         rules whose order is the whole story *)
      Alcotest.(check bool) "shrunk to at most 2 rules" true
        (List.length f.Fwcase.shrunk_table.Table.rules <= 2);
      Alcotest.(check bool) "reference semantics is the dissenter" true
        (List.exists
           (fun (m : Fwcase.mismatch) -> m.Fwcase.engine = "interp-naive")
           f.Fwcase.shrunk_mismatches)

let suite =
  ( "firewall",
    [
      Alcotest.test_case "rule text round-trip" `Quick test_rule_roundtrip;
      Alcotest.test_case "rule parse errors" `Quick test_rule_errors;
      Alcotest.test_case "table parse and round-trip" `Quick test_table_roundtrip;
      Alcotest.test_case "reference semantics edges" `Quick test_semantics;
      Alcotest.test_case "examples compile certified" `Quick test_examples_certified;
      Alcotest.test_case "rule guard chains" `Quick test_rule_guards;
      Alcotest.test_case "clean table lints clean" `Quick test_clean_lint;
      Alcotest.test_case "demo table classification" `Quick test_demo_lint;
      Alcotest.test_case "memoized relate" `Quick test_relate_memo;
      Alcotest.test_case "install and demux, both strategies" `Quick test_install;
      Alcotest.test_case "fuzz campaign agrees" `Quick test_fuzz_campaign;
      Alcotest.test_case "last-match-wins mutant caught" `Quick test_mutant_caught;
    ] )
