(* The register-IR compiler: lowering shape, the optimizer passes (CSE,
   dead-value elimination, Analysis-seeded folding), the never-lose raise
   round trip, the Regvm engine, and the Pfdev compile strategies. *)

open Pf_filter
module Packet = Pf_pkt.Packet
module Gen = Pf_fuzz.Gen
module Pfdev = Pf_kernel.Pfdev

let i ?(op = Op.Nop) action = Insn.make ~op action

let validate_exn p =
  match Validate.check p with
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpectedly invalid: %a" Validate.pp_error e

let corpus =
  [ ("fig-3-8", Predicates.fig_3_8);
    ("fig-3-9", Predicates.fig_3_9);
    ("accept-all", Predicates.accept_all);
    ("reject-all", Predicates.reject_all);
    ("pup-dst-port", Predicates.pup_dst_port ~host:2 35l);
    ("pup-dst-port-10mb", Predicates.pup_dst_port_10mb ~host:2 35l);
    ("udp-dst-port-any-ihl", Predicates.udp_dst_port_any_ihl 53);
    ("synthetic-accept", Predicates.synthetic ~length:7 ~accept:true);
    ("synthetic-reject", Predicates.synthetic ~length:7 ~accept:false)
  ]

(* {1 Lowering} *)

let test_lowering () =
  (* Figure 3-8 reads word 3 twice and word 1 once; constants never become
     IR instructions, so the lowered form is loads + ALU only. *)
  let ir = Ir.lower (validate_exn Predicates.fig_3_8) in
  Alcotest.(check int) "fig 3-8 lowered loads" 3 (Ir.load_count ir);
  Alcotest.(check int) "fig 3-8 lowered instrs" 10 (Ir.instr_count ir);
  (* Figure 3-9's CAND chain becomes compare-and-terminate exits. *)
  let ir = Ir.lower (validate_exn Predicates.fig_3_9) in
  let tconds =
    Array.fold_left
      (fun n ins -> match ins with Ir.Tcond _ -> n + 1 | _ -> n)
      0 ir.Ir.instrs
  in
  Alcotest.(check int) "fig 3-9 tconds" 2 tconds;
  (* The empty program accepts via the empty stack. *)
  let ir = Ir.lower (validate_exn Predicates.accept_all) in
  Alcotest.(check bool) "empty accepts" true (ir.Ir.terminator = Ir.Halt true)

(* {1 The optimizer passes} *)

let test_cse () =
  (* The duplicated [pushword+3] (and the duplicated [and 0x00ff] above it)
     must collapse: one load per distinct packet word. *)
  let ir, report = Regopt.optimize (validate_exn Predicates.fig_3_8) in
  Alcotest.(check int) "fig 3-8 optimized loads" 2 (Ir.load_count ir);
  Alcotest.(check int) "loads before" 3 report.Regopt.loads_before;
  Alcotest.(check int) "loads after" 2 report.Regopt.loads_after;
  Alcotest.(check bool) "cse reported changes" true
    (List.assoc "cse" report.Regopt.passes > 0);
  (* Byte-for-byte duplicate loads, no consumer between them. *)
  let p =
    Program.v ~priority:0
      [ i (Action.Pushword 4); i (Action.Pushword 4); i ~op:Op.Eq Action.Nopush ]
  in
  let ir, _ = Regopt.optimize (validate_exn p) in
  Alcotest.(check int) "pkt[4] = pkt[4] reads once" 1 (Ir.load_count ir)

let test_dve () =
  (* A guard on word 5 retains that load; the (folded-away) [or 0xffff]
     leaves the word-3 load dead, and — being covered by the retained
     word-5 load, which proves the packet long enough — deletable. *)
  let p =
    Program.v ~priority:0
      [ i (Action.Pushword 5);
        i ~op:Op.Cand (Action.Pushlit 7);
        i (Action.Pushword 3);
        i ~op:Op.Or Action.Pushffff
      ]
  in
  let ir, report = Regopt.optimize (validate_exn p) in
  Alcotest.(check int) "only the guard load survives" 1 (Ir.load_count ir);
  Alcotest.(check int) "guard + nothing else" 2 (Ir.instr_count ir);
  Alcotest.(check bool) "fold fired" true (List.assoc "fold" report.Regopt.passes > 0);
  Alcotest.(check bool) "dve fired" true (List.assoc "dve" report.Regopt.passes > 0);
  (* An uncovered dead load must survive: deleting it would accept a 4-word
     packet the original faults on. *)
  let p =
    Program.v ~priority:0
      [ i (Action.Pushword 9); i ~op:Op.Or Action.Pushffff ]
  in
  let ir, _ = Regopt.optimize (validate_exn p) in
  Alcotest.(check int) "uncovered dead load kept" 1 (Ir.load_count ir);
  let vm = Regvm.compile (validate_exn p) in
  Alcotest.(check bool) "short packet still rejects" false
    (Regvm.run vm (Packet.of_words [ 1; 2; 3 ]));
  Alcotest.(check bool) "long packet accepts" true
    (Regvm.run vm (Packet.of_words (List.init 10 Fun.id)))

let test_analysis_folding () =
  (* Always_reject collapses to a bare reject... *)
  let ir, report = Regopt.optimize (validate_exn Predicates.reject_all) in
  Alcotest.(check int) "reject-all instrs" 0 (Ir.instr_count ir);
  Alcotest.(check bool) "reject-all halts false" true
    (ir.Ir.terminator = Ir.Halt false);
  Alcotest.(check bool) "analysis pass fired" true
    (List.assoc "analysis" report.Regopt.passes > 0);
  (* ...and a proven-terminating prefix truncates everything after it. *)
  let p =
    Program.v ~priority:0
      [ i Action.Pushzero;
        i ~op:Op.Cor Action.Pushzero;
        i (Action.Pushword 9);
        i ~op:Op.Eq (Action.Pushlit 1)
      ]
  in
  let ir, _ = Regopt.optimize (validate_exn p) in
  Alcotest.(check int) "everything after the certain exit drops" 0
    (Ir.instr_count ir);
  Alcotest.(check bool) "collapsed to accept" true (ir.Ir.terminator = Ir.Halt true)

(* {1 The raise round trip} *)

let sample_packets =
  let rng = Gen.Rng.make 0x1234 in
  let random = List.init 40 (fun _ -> fst (Gen.packet rng)) in
  (* Short packets exercise the fault paths the raise discipline protects. *)
  let short = List.init 8 (fun n -> Packet.of_words (List.init n (fun w -> w * 3))) in
  random @ short

let test_raise_round_trip () =
  List.iter
    (fun (name, p) ->
      let v = validate_exn p in
      let raised, report = Regopt.raise_program v in
      (match Validate.check raised with
      | Error e ->
        Alcotest.failf "%s: raised program invalid: %a" name Validate.pp_error e
      | Ok vr ->
        Alcotest.(check bool)
          (name ^ ": raised never grows") true
          (Program.code_words raised <= Program.code_words p);
        Alcotest.(check bool)
          (name ^ ": raised cost bound never grows") true
          ((Analysis.analyze vr).Analysis.cost_bound
          <= (Analysis.analyze v).Analysis.cost_bound));
      ignore (report : Regopt.report);
      List.iter
        (fun pkt ->
          Alcotest.(check bool)
            (name ^ ": raised verdict matches")
            (Interp.accepts ~semantics:`Paper p pkt)
            (Interp.accepts ~semantics:`Paper raised pkt))
        sample_packets)
    corpus

let test_regvm_matches_interp () =
  List.iter
    (fun (name, p) ->
      let vm = Regvm.compile (validate_exn p) in
      List.iter
        (fun pkt ->
          Alcotest.(check bool)
            (name ^ ": regvm verdict matches")
            (Interp.accepts ~semantics:`Paper p pkt)
            (Regvm.run vm pkt))
        sample_packets)
    corpus

(* {1 Pfdev compile strategies} *)

let mk_dev strategy =
  let eng = Pf_sim.Engine.create () in
  let costs = Pf_sim.Costs.microvax_ii in
  let cpu = Pf_sim.Cpu.create costs in
  let stats = Pf_sim.Stats.create () in
  let dev =
    Pfdev.create eng cpu costs stats ~variant:Pf_net.Frame.Exp3
      ~address:(Pf_net.Addr.exp 1)
      ~send:(fun _ -> ())
  in
  Pfdev.set_compile_strategy dev strategy;
  (* Cache off: every packet must take the filter walk so the per-port
     engine counters are exact. *)
  Pfdev.set_cache_enabled dev false;
  (eng, stats, dev)

let test_pfdev_strategies () =
  let program = Predicates.pup_dst_port_10mb ~host:2 35l in
  let rng = Gen.Rng.make 0xBEEF in
  let packets = List.init 60 (fun _ -> fst (Gen.packet rng)) in
  let run strategy =
    let eng, stats, dev = mk_dev strategy in
    let port = Pfdev.open_port dev in
    (match Pfdev.set_filter port program with
    | Ok () -> ()
    | Error e -> Alcotest.failf "install: %a" Pfdev.pp_install_error e);
    let verdicts = List.map (fun pkt -> Pfdev.demux dev pkt) packets in
    Pf_sim.Engine.run eng;
    (verdicts, Option.get (Pfdev.port_engine_stats port), stats)
  in
  let v_off, s_off, _ = run `Off in
  let v_raise, s_raise, _ = run `Raise_only in
  let v_reg, s_reg, st_reg = run `Regvm in
  Alcotest.(check (list bool)) "raise-only verdicts agree" v_off v_raise;
  Alcotest.(check (list bool)) "regvm verdicts agree" v_off v_reg;
  Alcotest.(check bool) "off engine kind" true (s_off.Pfdev.engine = `Stack);
  Alcotest.(check bool) "raised engine kind" true (s_raise.Pfdev.engine = `Raised);
  Alcotest.(check bool) "regvm engine kind" true (s_reg.Pfdev.engine = `Regvm);
  Alcotest.(check int) "every packet applied the filter" (List.length packets)
    s_reg.Pfdev.applications;
  Alcotest.(check bool) "regvm executed IR insns" true
    (s_reg.Pfdev.insns_executed > 0);
  Alcotest.(check int) "regvm insns surfaced in stats"
    s_reg.Pfdev.insns_executed
    (Pf_sim.Stats.get st_reg "pf.regvm_insns");
  (* The register engine never executes more steps than the stack walk: the
     optimized IR carries no push-only instructions at all. *)
  Alcotest.(check bool) "regvm executes fewer steps" true
    (s_reg.Pfdev.insns_executed <= s_off.Pfdev.insns_executed);
  (* The strategy applies to future installs: an already-installed port
     keeps its engine. *)
  let eng, _, dev = mk_dev `Off in
  let port = Pfdev.open_port dev in
  (match Pfdev.set_filter port program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install: %a" Pfdev.pp_install_error e);
  Pfdev.set_compile_strategy dev `Regvm;
  Alcotest.(check bool) "existing install keeps its engine" true
    ((Option.get (Pfdev.port_engine_stats port)).Pfdev.engine = `Stack);
  (match Pfdev.set_filter port program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reinstall: %a" Pfdev.pp_install_error e);
  Alcotest.(check bool) "reinstall adopts the strategy" true
    ((Option.get (Pfdev.port_engine_stats port)).Pfdev.engine = `Regvm);
  Pf_sim.Engine.run eng

let suite =
  ( "ir",
    [ Alcotest.test_case "lowering shape" `Quick test_lowering;
      Alcotest.test_case "cse collapses duplicate loads" `Quick test_cse;
      Alcotest.test_case "dead-value elimination" `Quick test_dve;
      Alcotest.test_case "analysis-seeded folding" `Quick test_analysis_folding;
      Alcotest.test_case "raise round trip (corpus)" `Quick test_raise_round_trip;
      Alcotest.test_case "regvm matches interp (corpus)" `Quick
        test_regvm_matches_interp;
      Alcotest.test_case "pfdev compile strategies" `Quick test_pfdev_strategies
    ] )
